"""Figures 8, 9 and 10: the headline comparison of CDet, RF and Xatu.

One :class:`HeadlineExperiment` generates a trace, trains Xatu and the RF
baseline once, then sweeps the scrubbing-overhead bound, re-calibrating the
alert thresholds per bound (this is how Figure 8 varies its x axis).
Per-attack-type breakdowns (Figure 10) and the ROC comparison (Figure 9)
reuse the same trained artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dataset import DatasetBuilder
from ..core.detector import DetectorConfig, XatuDetector
from ..core.model import XatuModel
from ..core.pipeline import PipelineConfig, alerts_to_records
from ..core.trainer import XatuTrainer
from ..detect.detectors import DetectionAlert, FastNetMonDetector, NetScoutDetector, TraceDetector
from ..metrics.core import auc, percentile_summary, roc_curve
from ..scrub.center import DiversionWindow, ScrubbingCenter
from ..signals.features import FeatureExtractor
from ..survival.calibration import ThresholdCalibrator
from ..synth.attacks import AttackType
from ..synth.scenario import Trace, TraceGenerator
from .rf_baseline import RFBaseline, rf_features_from_window

__all__ = ["SystemMetrics", "HeadlineExperiment", "RocPoint"]


@dataclass(frozen=True, slots=True)
class SystemMetrics:
    """One system's metrics at one overhead bound (one Figure 8 bar)."""

    system: str
    overhead_bound: float
    effectiveness_p10: float
    effectiveness_median: float
    effectiveness_p90: float
    delay_p10: float
    delay_median: float
    delay_p90: float
    overhead_p25: float
    overhead_median: float
    overhead_p75: float
    n_events: int


@dataclass(frozen=True, slots=True)
class RocPoint:
    system: str
    fpr: np.ndarray
    tpr: np.ndarray
    auc: float


class HeadlineExperiment:
    """Trains once, evaluates CDet / FNM / RF / Xatu across bounds."""

    def __init__(self, config: PipelineConfig, trace: Trace | None = None) -> None:
        self.config = config
        self.trace = trace or TraceGenerator(config.scenario).materialize()
        self._prepared = False

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Generate labels, train Xatu and RF, precompute test scores."""
        if self._prepared:
            return
        cfg = self.config
        trace = self.trace
        (self.train_rng, self.val_rng, self.test_rng) = cfg.split.bounds(trace.horizon)

        self.netscout = NetScoutDetector()
        self.fastnetmon = FastNetMonDetector()
        self.ns_alerts = self.netscout.detect(trace)
        self.fnm_alerts = self.fastnetmon.detect(trace)
        self.entropy_alerts = None  # computed lazily (extension baseline)
        labeled = [a for a in self.ns_alerts if a.event_id >= 0]
        self.labeled = labeled

        extractor = FeatureExtractor(
            trace,
            alerts=alerts_to_records(trace, labeled),
            enabled_groups=cfg.enabled_groups,
        )
        self.extractor = extractor
        builder = DatasetBuilder(trace, extractor, cfg.model, rng=np.random.default_rng(cfg.seed))
        self.train_set = builder.build(labeled, self.train_rng)
        self.val_set = builder.build(labeled, self.val_rng, scaler=self.train_set.scaler)

        self.model = XatuModel(cfg.model)
        XatuTrainer(self.model, cfg.train).fit(self.train_set, validation=self.val_set)
        self.rf = RFBaseline.train(self.train_set, cfg.model, seed=cfg.seed)

        # Hazard series on validation and test (threshold-independent).
        self._val_output = XatuDetector(
            trace, extractor, self.model, self.train_set.scaler,
            DetectorConfig(autoregressive=False),
        ).run(self.val_rng)
        self._test_output = XatuDetector(
            trace, extractor, self.model, self.train_set.scaler,
            DetectorConfig(autoregressive=cfg.autoregressive),
        ).run(self.test_rng)

        # RF per-minute scores on validation and test.
        customers = [c.customer_id for c in trace.world.customers]
        self._rf_val = {
            cid: self.rf.score_series(
                trace, extractor, self.train_set.scaler, cid, self.val_rng, stride=3
            )
            for cid in customers
        }
        self._rf_test = {
            cid: self.rf.score_series(
                trace, extractor, self.train_set.scaler, cid, self.test_rng, stride=3
            )
            for cid in customers
        }
        stab = int((self.test_rng[1] - self.test_rng[0]) * self.config.stabilization_fraction)
        self.eval_range = (self.test_rng[0] + stab, self.test_rng[1])
        self._center = ScrubbingCenter(trace)
        self._prepared = True

    # ------------------------------------------------------------------
    def _xatu_windows(
        self, output, minute_range: tuple[int, int], threshold: float
    ) -> list[DiversionWindow]:
        from ..core.detector import windows_from_hazards

        return windows_from_hazards(
            self.trace,
            output.hazard_series,
            minute_range,
            self.model.config.detect_window,
            threshold,
        )

    def _metrics(
        self,
        system: str,
        windows: list[DiversionWindow],
        bound: float,
        minute_range: tuple[int, int],
        types: set[AttackType] | None = None,
    ) -> SystemMetrics:
        report = self._center.account(windows)
        lo, hi = minute_range
        events = [
            e for e in self.trace.events
            if lo <= e.onset < hi and (types is None or e.attack_type in types)
        ]
        eff = np.array([report.effectiveness(e.event_id) for e in events])
        missed = self.config.model.detect_window
        delays = np.array(
            [
                report.detection_delay.get(e.event_id)
                if report.detection_delay.get(e.event_id) is not None
                else missed
                for e in events
            ],
            dtype=np.float64,
        )
        overheads = report.overhead_values()
        e_sum = percentile_summary(eff, 10, 90)
        d_sum = percentile_summary(delays, 10, 90)
        o_sum = percentile_summary(overheads, 25, 75)
        return SystemMetrics(
            system=system,
            overhead_bound=bound,
            effectiveness_p10=e_sum.low,
            effectiveness_median=e_sum.median,
            effectiveness_p90=e_sum.high,
            delay_p10=d_sum.low,
            delay_median=d_sum.median,
            delay_p90=d_sum.high,
            overhead_p25=o_sum.low,
            overhead_median=o_sum.median,
            overhead_p75=o_sum.high,
            n_events=len(events),
        )

    def _calibrate_xatu(self, bound: float) -> float:
        def evaluate(threshold: float) -> tuple[float, np.ndarray]:
            windows = self._xatu_windows(self._val_output, self.val_rng, threshold)
            report = self._center.account(windows)
            lo, hi = self.val_rng
            eff = [
                report.effectiveness(e.event_id)
                for e in self.trace.events
                if lo <= e.onset < hi
            ]
            return (float(np.median(eff)) if eff else 0.0, report.overhead_values())

        return ThresholdCalibrator().calibrate(evaluate, bound).threshold

    def _calibrate_rf(self, bound: float) -> float:
        def evaluate(threshold: float) -> tuple[float, np.ndarray]:
            windows = self.rf.windows_from_scores(
                self.trace, self._rf_val, self.val_rng, threshold
            )
            report = self._center.account(windows)
            lo, hi = self.val_rng
            eff = [
                report.effectiveness(e.event_id)
                for e in self.trace.events
                if lo <= e.onset < hi
            ]
            return (float(np.median(eff)) if eff else 0.0, report.overhead_values())

        # RF scores are probabilities with "alert when >= thr": invert grid.
        grid = np.linspace(0.05, 0.95, 19)
        best_thr, best_eff = 0.95, -1.0
        for thr in grid[::-1]:
            eff, overheads = evaluate(float(thr))
            p75 = float(np.percentile(overheads, 75)) if len(overheads) else 0.0
            if p75 <= bound and eff > best_eff:
                best_eff, best_thr = eff, float(thr)
        return best_thr

    # ------------------------------------------------------------------
    def cdet_windows(self, alerts: list[DetectionAlert]) -> list[DiversionWindow]:
        return [
            DiversionWindow(a.customer_id, a.detect_minute, a.end_minute)
            for a in alerts
        ]

    def sweep(
        self,
        overhead_bounds: list[float],
        types: set[AttackType] | None = None,
        include_entropy: bool = False,
    ) -> list[SystemMetrics]:
        """Figure 8 (types=None) / Figure 10 (one bound, per type).

        ``include_entropy`` adds the statistical entropy-deviation baseline
        (an extension beyond the paper's three comparison systems).
        """
        self.prepare()
        rows: list[SystemMetrics] = []
        ns_windows = self.cdet_windows(self.ns_alerts)
        fnm_windows = self.cdet_windows(self.fnm_alerts)
        if include_entropy and self.entropy_alerts is None:
            from ..detect.entropy import EntropyDetector

            self.entropy_alerts = EntropyDetector().detect(self.trace)
        for bound in overhead_bounds:
            rows.append(self._metrics("netscout", ns_windows, bound, self.eval_range, types))
            rows.append(self._metrics("fastnetmon", fnm_windows, bound, self.eval_range, types))
            if include_entropy:
                rows.append(self._metrics(
                    "entropy", self.cdet_windows(self.entropy_alerts),
                    bound, self.eval_range, types,
                ))
            rf_thr = self._calibrate_rf(bound)
            rf_windows = self.rf.windows_from_scores(
                self.trace, self._rf_test, self.test_rng, rf_thr
            )
            rows.append(self._metrics("rf", rf_windows, bound, self.eval_range, types))
            xatu_thr = self._calibrate_xatu(bound)
            xatu_windows = self._xatu_windows(self._test_output, self.test_rng, xatu_thr)
            rows.append(self._metrics("xatu", xatu_windows, bound, self.eval_range, types))
        return rows

    def per_type(
        self, overhead_bound: float = 0.1, min_events: int = 2
    ) -> dict[str, list[SystemMetrics]]:
        """Figure 10: per-attack-type metrics at one bound."""
        self.prepare()
        lo, hi = self.eval_range
        out: dict[str, list[SystemMetrics]] = {}
        for attack_type in AttackType:
            n = sum(
                1 for e in self.trace.events
                if lo <= e.onset < hi and e.attack_type is attack_type
            )
            if n < min_events:
                continue
            out[attack_type.value] = self.sweep([overhead_bound], types={attack_type})
        return out

    # ------------------------------------------------------------------
    def roc(self) -> list[RocPoint]:
        """Figure 9: per-sample ROC of Xatu vs RF on held-out windows.

        Samples are the balanced validation windows (attack = NetScout-
        labeled, as the paper treats NetScout as ground truth for ROC).
        Xatu's score is the event probability 1 - S at the label step; the
        RF's is its classifier probability.
        """
        self.prepare()
        x, c, _t = self.val_set.arrays()
        labels = c.astype(bool)
        xatu_scores = 1.0 - self.model.survival_np(x)[:, -1]
        rf_rows = np.stack(
            [rf_features_from_window(s.features, self.config.model) for s in self.val_set.samples]
        )
        rf_scores = self.rf.forest.predict_proba(rf_rows)
        points = []
        for name, scores in (("xatu", xatu_scores), ("rf", rf_scores)):
            fpr, tpr, _thr = roc_curve(scores, labels)
            points.append(RocPoint(name, fpr, tpr, auc(fpr, tpr)))
        return points
