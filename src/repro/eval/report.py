"""One-shot markdown report over the cheap (non-training) experiments.

``build_report`` runs the observational analyses (Figures 3/4/15/16,
Table 2) on a fresh trace and renders them as a single markdown document —
the artefact an operator would skim before deciding to deploy.  The
training-based figures are deliberately excluded (they take minutes; run
the benchmark suite for those).
"""

from __future__ import annotations

import numpy as np

from ..synth.scenario import ScenarioConfig, Trace, TraceGenerator
from .census import (
    attacker_activity_by_day,
    clustering_timeline,
    prep_signal_census,
    split_table,
    transition_matrix,
)
from .naive_early import run_naive_early
from .tables import format_value, render_table

__all__ = ["build_report"]


def _md_table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(format_value(v) for v in row) + " |")
    return "\n".join(out)


def build_report(
    scenario: ScenarioConfig | None = None, trace: Trace | None = None
) -> str:
    """Render the observational-experiment report as markdown text."""
    if trace is None:
        trace = TraceGenerator(scenario or ScenarioConfig()).materialize()
    cfg = trace.config
    sections: list[str] = [
        "# Xatu reproduction — observational report",
        "",
        f"Trace: {cfg.total_days:g} days x {cfg.minutes_per_day} min/day, "
        f"{cfg.n_customers} customers, {cfg.n_botnets} botnets, "
        f"{len(trace.events)} attacks, {trace.sampled_flows} sampled flows.",
    ]

    # Fig 4a ------------------------------------------------------------
    census = prep_signal_census(trace)
    rows = []
    for name, getter in (
        ("blocklisted (A1)", lambda r: r.blocklisted_fraction),
        ("previous attackers (A2)", lambda r: r.previous_attacker_fraction),
        ("spoofed (A3)", lambda r: r.spoofed_fraction),
    ):
        values = np.array([getter(r) for r in census])
        rows.append([name, float(np.median(values)), float((values > 0).mean())])
    sections += [
        "",
        "## Attack preparation signals (Fig 4a)",
        "",
        _md_table(["signal", "median attacker fraction", "share of attacks"], rows),
    ]

    # Fig 4b ------------------------------------------------------------
    matrix, types, pairs = transition_matrix(trace)
    rows = [
        [t.value, matrix[i, i]]
        for i, t in enumerate(types)
        if matrix[i].sum() > 0
    ]
    sections += [
        "",
        f"## Attack type transitions over {pairs} pairs (Fig 4b)",
        "",
        _md_table(["attack type", "P(same type next)"], rows),
    ]

    # Fig 15 ------------------------------------------------------------
    days_back = max(1, int(cfg.prep_days))
    activity = attacker_activity_by_day(trace, days_back=days_back)
    rows = [
        [f"-{d + 1}"] + [float(activity[k][d]) for k in ("blocklist", "previous", "spoofed")]
        for d in range(days_back)
    ]
    sections += [
        "",
        "## Attacker activity by day before attack (Fig 15)",
        "",
        _md_table(["day", "blocklist", "previous", "spoofed"], rows),
    ]

    # Fig 16 ------------------------------------------------------------
    timeline = clustering_timeline(trace, minutes_before=[15, 10, 5, 0])
    rows = [
        [f"t-{offset}", *[float(x) for x in timeline[offset]]]
        for offset in sorted(timeline, reverse=True)
    ]
    sections += [
        "",
        "## Clustering coefficient approaching detection (Fig 16)",
        "",
        _md_table(["offset", "cc_dot", "cc_min", "cc_max"], rows),
    ]

    # Fig 3 ---------------------------------------------------------------
    points = run_naive_early(trace, [0, 3, 6, 9, 12, 15])
    rows = [
        [p.minutes_early, p.effectiveness_median, p.overhead_mean]
        for p in points
        if p.duration_class == "overall"
    ]
    sections += [
        "",
        "## Naive early detection trade-off (Fig 3)",
        "",
        _md_table(["minutes early", "eff median", "overhead mean"], rows),
    ]

    # Table 2 -------------------------------------------------------------
    table = split_table(trace)
    rows = [
        [name, row["train"], row["val"], row["test"], sum(row.values())]
        for name, row in table.items()
        if sum(row.values())
    ]
    sections += [
        "",
        "## Attack counts per split (Table 2)",
        "",
        _md_table(["type", "train", "val", "test", "total"], rows),
        "",
    ]
    return "\n".join(sections)
