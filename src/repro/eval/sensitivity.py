"""Figure 18: sensitivity analysis on Xatu's components and parameters.

Six sweeps, mirroring Figures 18(a)-(f):

a. **CDet independence** — train with NetScout labels vs FastNetMon labels.
b. **LSTM contribution** — drop one of the three timescale LSTMs at a time.
c. **Timescale choice** — smaller / default / larger pooling windows.
d. **Survival vs classification** — SAFE loss vs BCE (also in ablation).
e. **Hidden units** — sweep the LSTM hidden size.
f. **History length** — sweep the lookback (time length fed to the LSTMs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.model import TimescaleSpec, XatuModelConfig
from ..core.pipeline import PipelineConfig, XatuPipeline
from ..detect.detectors import FastNetMonDetector, NetScoutDetector
from ..synth.scenario import Trace, TraceGenerator

__all__ = ["SensitivityPoint", "SensitivityExperiment"]


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """One configuration's test metrics."""

    sweep: str
    setting: str
    effectiveness_p10: float
    effectiveness_median: float
    effectiveness_p90: float
    delay_median: float


class SensitivityExperiment:
    """Shares one trace across every sweep configuration."""

    def __init__(self, config: PipelineConfig, trace: Trace | None = None) -> None:
        self.config = config
        self.trace = trace or TraceGenerator(config.scenario).materialize()

    def _run(self, sweep: str, setting: str, config: PipelineConfig, cdet=None) -> SensitivityPoint:
        result = XatuPipeline(config, trace=self.trace, cdet=cdet).run()
        return SensitivityPoint(
            sweep=sweep,
            setting=setting,
            effectiveness_p10=result.effectiveness.low,
            effectiveness_median=result.effectiveness.median,
            effectiveness_p90=result.effectiveness.high,
            delay_median=result.delay.median,
        )

    # -- Fig 18a ---------------------------------------------------------
    def cdet_choice(self) -> list[SensitivityPoint]:
        return [
            self._run("cdet", "netscout", self.config, cdet=NetScoutDetector()),
            self._run("cdet", "fastnetmon", self.config, cdet=FastNetMonDetector()),
        ]

    # -- Fig 18b ---------------------------------------------------------
    def lstm_contribution(self) -> list[SensitivityPoint]:
        points = [self._run("lstm", "all", self.config)]
        base = self.config.model
        for drop in range(len(base.timescales)):
            scales = tuple(
                ts for i, ts in enumerate(base.timescales) if i != drop
            )
            cfg = replace(self.config, model=replace(base, timescales=scales))
            points.append(
                self._run("lstm", f"without_{base.timescales[drop].name}", cfg)
            )
        return points

    # -- Fig 18c ---------------------------------------------------------
    def timescale_choice(
        self, variants: dict[str, tuple[TimescaleSpec, ...]] | None = None
    ) -> list[SensitivityPoint]:
        base = self.config.model
        if variants is None:
            # Compressed analogues of the paper's (1,5,10) and (10,60,120).
            variants = {
                "default": base.timescales,
                "smaller": (
                    TimescaleSpec("short", 1, 60),
                    TimescaleSpec("medium", 2, 45),
                    TimescaleSpec("long", 5, 36),
                ),
                "larger": (
                    TimescaleSpec("short", 1, 60),
                    TimescaleSpec("medium", 20, 12),
                    TimescaleSpec("long", 60, 6),
                ),
            }
        points = []
        for name, scales in variants.items():
            cfg = replace(self.config, model=replace(base, timescales=scales))
            points.append(self._run("timescales", name, cfg))
        return points

    # -- Fig 18d ---------------------------------------------------------
    def survival_vs_classification(self) -> list[SensitivityPoint]:
        bce = replace(self.config, train=replace(self.config.train, loss="bce"))
        return [
            self._run("loss", "survival", self.config),
            self._run("loss", "bce", bce),
        ]

    # -- Fig 18e ---------------------------------------------------------
    def hidden_units(self, sizes: list[int] | None = None) -> list[SensitivityPoint]:
        sizes = sizes or [4, 8, 16, 32]
        points = []
        for size in sizes:
            cfg = replace(
                self.config, model=replace(self.config.model, hidden_size=size)
            )
            points.append(self._run("hidden", str(size), cfg))
        return points

    # -- extension: aggregation-operator ablation -------------------------
    def pooling_choice(self) -> list[SensitivityPoint]:
        """Average vs max pooling for the Fig-6 aggregation stage.

        The paper uses 1-d (average) pooling; max pooling is the natural
        alternative for spike-dominated counters.  Not a paper figure — an
        ablation on a design choice DESIGN.md calls out.
        """
        points = []
        for pooling in ("avg", "max"):
            cfg = replace(
                self.config, model=replace(self.config.model, pooling=pooling)
            )
            points.append(self._run("pooling", pooling, cfg))
        return points

    # -- Fig 18f ---------------------------------------------------------
    def history_length(
        self, long_spans: list[int] | None = None
    ) -> list[SensitivityPoint]:
        """Sweep the long-LSTM span (the total lookback in minutes)."""
        base = self.config.model
        long_spans = long_spans or [6, 12, 24]
        points = []
        for span in long_spans:
            scales = tuple(
                replace_span(ts, span) if i == len(base.timescales) - 1 else ts
                for i, ts in enumerate(base.timescales)
            )
            cfg = replace(self.config, model=replace(base, timescales=scales))
            points.append(self._run("history", f"{scales[-1].minutes}min", cfg))
        return points


def replace_span(ts: TimescaleSpec, span: int) -> TimescaleSpec:
    return TimescaleSpec(ts.name, ts.window, span)
