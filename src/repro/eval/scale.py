"""Scenario scaling: map paper-scale setups to compressed replicas.

The paper's evaluation runs on 100 days x 1440 min/day with a 10-day
auxiliary lookback.  ``compress_scenario`` produces a replica whose *time
ratios* are preserved (prep lookback : horizon, split boundaries, attack
counts per day) while wall-clock cost shrinks by the compression factor —
the knob every bench preset is built on.  ``scale_model_for`` derives a
model config whose timescale spans fit the compressed prep window.
"""

from __future__ import annotations

import dataclasses
import math

from ..core.model import TimescaleSpec, XatuModelConfig
from ..synth.scenario import ScenarioConfig

__all__ = ["compress_scenario", "scale_model_for", "PAPER_SCENARIO"]

# The paper's setup, §2.2/§5.1/§6.
PAPER_SCENARIO = ScenarioConfig(
    total_days=100.0,
    minutes_per_day=1440,
    prep_days=10.0,
    n_customers=1000,
    n_botnets=40,
    botnet_size=2000,
)


def compress_scenario(
    base: ScenarioConfig,
    time_factor: float,
    size_factor: float = 1.0,
    min_minutes_per_day: int = 30,
) -> ScenarioConfig:
    """Shrink a scenario by ``time_factor`` (and optionally ``size_factor``).

    Time compression shortens the day (fewer minutes per "day") keeping the
    number of days and the prep:horizon ratio intact; size compression
    scales population counts.  Factors must be >= 1.
    """
    if time_factor < 1.0 or size_factor < 1.0:
        raise ValueError("compression factors must be >= 1")
    minutes_per_day = max(min_minutes_per_day, round(base.minutes_per_day / time_factor))
    return dataclasses.replace(
        base,
        minutes_per_day=int(minutes_per_day),
        n_customers=max(3, round(base.n_customers / size_factor)),
        n_botnets=max(1, round(base.n_botnets / size_factor)),
        botnet_size=max(20, round(base.botnet_size / size_factor)),
    )


def scale_model_for(
    scenario: ScenarioConfig,
    hidden_size: int = 16,
    dense_size: int = 8,
    detect_window: int | None = None,
    n_scales: int = 3,
) -> XatuModelConfig:
    """Derive a model config whose timescales tile the scenario's lookback.

    The long scale spans the full prep window; each finer scale covers a
    geometrically-shrinking recent slice at a geometrically finer pooling
    window — preserving the paper's short/medium/long structure at any
    compression.
    """
    if n_scales < 1:
        raise ValueError("need at least one timescale")
    lookback = max(scenario.prep_minutes, 30)
    detect = detect_window or max(5, lookback // 24)

    scales: list[TimescaleSpec] = []
    names = ["short", "medium", "long", "xlong", "xxlong"]
    for i in range(n_scales):
        # Pooling windows 1, w, w^2 ... chosen so the last spans `lookback`.
        if n_scales == 1:
            window = 1
        else:
            window = max(1, round(lookback ** (i / (n_scales - 1)) / (lookback ** 0.35)))
            window = max(1, min(window, lookback // 4))
        if i == 0:
            window = 1
        span_minutes = lookback if i == n_scales - 1 else max(
            detect * 2, round(lookback / (2 ** (n_scales - 1 - i)))
        )
        span = max(detect if i == 0 else 2, span_minutes // window)
        scales.append(TimescaleSpec(names[min(i, len(names) - 1)], window, span))

    # Keep spans consistent: the first scale must cover the detect window.
    first = scales[0]
    if first.span < detect:
        scales[0] = TimescaleSpec(first.name, first.window, detect)
    config = XatuModelConfig(
        hidden_size=hidden_size,
        dense_size=dense_size,
        detect_window=detect,
        timescales=tuple(scales),
    )
    config.validate()
    return config
