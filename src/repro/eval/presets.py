"""Standard laptop-scale experiment presets.

The paper's evaluation runs on 100 days of ISP traffic with a 200-hidden-
unit model.  Every figure here is regenerated on a *compressed replica*:
days of 120 minutes, a 10x-smaller world, and a smaller LSTM.  The presets
keep ratios (split fractions, prep lookback relative to horizon, timescale
ordering) aligned with the paper so the qualitative shapes carry over.

``tiny`` is for unit tests, ``bench`` for the benchmark harness, ``full``
for a closer-to-paper overnight run.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.model import TimescaleSpec, XatuModelConfig
from ..core.pipeline import PipelineConfig, SplitSpec
from ..core.trainer import TrainConfig
from ..synth.scenario import ScenarioConfig

__all__ = ["tiny_scenario", "bench_scenario", "full_scenario", "bench_pipeline_config"]


def tiny_scenario(seed: int = 3) -> ScenarioConfig:
    """Smallest scenario that still trains: ~10-30 attacks."""
    return ScenarioConfig(
        total_days=16,
        minutes_per_day=120,
        prep_days=2,
        n_customers=8,
        n_botnets=4,
        botnet_size=100,
        campaigns_per_botnet=2,
        seed=seed,
    )


def bench_scenario(seed: int = 3) -> ScenarioConfig:
    """The default benchmark scenario: ~40-80 attacks across 6 types."""
    return ScenarioConfig(
        total_days=24,
        minutes_per_day=120,
        prep_days=2,
        n_customers=12,
        n_botnets=6,
        botnet_size=150,
        campaigns_per_botnet=2,
        seed=seed,
    )


def full_scenario(seed: int = 3) -> ScenarioConfig:
    """Closer-to-paper scale (minutes_per_day=1440); hours of runtime."""
    return ScenarioConfig(
        total_days=100,
        minutes_per_day=1440,
        prep_days=10,
        n_customers=20,
        n_botnets=8,
        botnet_size=400,
        campaigns_per_botnet=2,
        seed=seed,
    )


def bench_model_config(detect_window: int = 10) -> XatuModelConfig:
    """Compressed multi-timescale spec: 1/5/20-minute pooling."""
    return XatuModelConfig(
        hidden_size=16,
        dense_size=8,
        detect_window=detect_window,
        timescales=(
            TimescaleSpec("short", 1, 60),
            TimescaleSpec("medium", 5, 36),
            TimescaleSpec("long", 20, 12),
        ),
    )


def bench_train_config(epochs: int = 6) -> TrainConfig:
    return TrainConfig(epochs=epochs, batch_size=8, learning_rate=3e-3)


def bench_pipeline_config(
    seed: int = 3,
    overhead_bound: float = 0.1,
    scenario: ScenarioConfig | None = None,
    epochs: int = 6,
    enabled_groups: frozenset[str] | None = None,
) -> PipelineConfig:
    """One-stop pipeline preset for benches and examples."""
    return PipelineConfig(
        scenario=scenario or bench_scenario(seed),
        model=bench_model_config(),
        train=bench_train_config(epochs),
        split=SplitSpec(),
        overhead_bound=overhead_bound,
        enabled_groups=enabled_groups,
        seed=seed,
    )
