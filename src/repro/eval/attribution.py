"""Figure 11: input-gradient attribution — *why* Xatu works.

The paper inspects the gradient of the detection output with respect to the
input features: a large gradient on the A2 (previous attackers) columns
hours before the anomaly start shows the model keying on preparation
activity long before the volumetric signal moves.

The autograd substrate makes this a one-liner: backpropagate the event
probability at the final detection step into the input tensor and aggregate
|gradient| per feature group per time step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import XatuModel
from ..nn import Tensor
from ..signals.features import group_slices

__all__ = ["GradientAttribution", "input_gradients"]


@dataclass
class GradientAttribution:
    """Per-group |gradient| over the input window (rows=minutes)."""

    groups: list[str]
    minutes: np.ndarray  # minute offsets relative to the window end
    magnitude: np.ndarray  # (len(minutes), len(groups))

    def dominant_group(self, minute_index: int) -> str:
        return self.groups[int(np.argmax(self.magnitude[minute_index]))]

    def group_series(self, group: str) -> np.ndarray:
        return self.magnitude[:, self.groups.index(group)]


def input_gradients(
    model: XatuModel, window: np.ndarray, groups: list[str] | None = None
) -> GradientAttribution:
    """Backpropagate the final-step event probability into the input.

    ``window`` is one scaled ``(lookback, 273)`` feature block.  Returns
    the mean |d(1 - S_N) / d x| per feature group per minute.
    """
    groups = groups or ["V", "A1", "A2", "A3", "A4", "A5"]
    slices = group_slices()
    x = Tensor(window[None, :, :], requires_grad=True)
    hazards = model(x)
    total_hazard = hazards.sum(axis=1)  # (1,)
    event_prob = 1.0 - (-total_hazard).exp()
    event_prob.sum().backward()
    assert x.grad is not None
    grad = np.abs(x.grad[0])  # (lookback, 273)
    magnitude = np.stack(
        [grad[:, slices[g]].mean(axis=1) for g in groups], axis=1
    )
    minutes = np.arange(-window.shape[0] + 1, 1)
    return GradientAttribution(groups=groups, minutes=minutes, magnitude=magnitude)
