# Developer entry points.  `make verify` is the pre-merge gate: the full
# tier-1 suite plus the golden differential check (docs/TESTING.md).

PY := PYTHONPATH=src python

.PHONY: verify test fast golden-check golden-record bench bench-full \
        bench-check metrics-selftest telemetry

test:
	$(PY) -m pytest -x -q

fast:
	$(PY) -m pytest -x -q -m "not slow"

golden-check:
	$(PY) -m repro.cli golden check

golden-record:
	$(PY) -m repro.cli golden record

# Smoke-mode microbenchmarks: exercises every case + the JSON round-trip
# in seconds without touching the committed results (docs/PERFORMANCE.md).
bench:
	$(PY) -m repro.cli bench --smoke --out /tmp/repro-bench

# Full-size run that refreshes the committed baseline.
bench-full:
	$(PY) -m repro.cli bench --tag fused

# Compare a fresh full-size run against the committed baseline without
# overwriting it; host mismatches warn instead of fail.
bench-check:
	$(PY) -m repro.cli bench --tag fused --check

# Telemetry (docs/OBSERVABILITY.md): exporter selftest, and a pipeline
# run that writes a full snapshot to /tmp/repro-telemetry.json.
metrics-selftest:
	$(PY) -m repro.cli metrics --selftest

telemetry:
	$(PY) -m repro.cli pipeline --epochs 2 --telemetry /tmp/repro-telemetry.json
	$(PY) -m repro.cli metrics /tmp/repro-telemetry.json

verify: test golden-check metrics-selftest
