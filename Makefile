# Developer entry points.  `make verify` is the pre-merge gate: the full
# tier-1 suite plus the golden differential check (docs/TESTING.md).

PY := PYTHONPATH=src python

.PHONY: verify test fast golden-check golden-record bench bench-full \
        bench-check bench-ingest bench-ingest-full scale-smoke \
        bench-scale-full metrics-selftest \
        telemetry serve-smoke serve-batched-smoke lint lint-deep \
        lint-baseline sanitize-test scenarios scenarios-check scenarios-ci

test:
	$(PY) -m pytest -x -q

fast:
	$(PY) -m pytest -x -q -m "not slow"

golden-check:
	$(PY) -m repro.cli golden check

golden-record:
	$(PY) -m repro.cli golden record

# Smoke-mode microbenchmarks: exercises every case + the JSON round-trip
# in seconds without touching the committed results (docs/PERFORMANCE.md).
bench:
	$(PY) -m repro.cli bench --smoke --out /tmp/repro-bench

# Full-size run that refreshes the committed baseline.
bench-full:
	$(PY) -m repro.cli bench --tag fused

# Compare a fresh full-size run against the committed baseline without
# overwriting it; host mismatches warn instead of fail.
bench-check:
	$(PY) -m repro.cli bench --tag fused --check

# Columnar-ingest benchmarks (docs/PERFORMANCE.md): zero-copy codec,
# group-by aggregation, vectorized sampling, and the shared-memory shard
# transport.  Smoke mode for CI; -full refreshes the committed baseline.
bench-ingest:
	$(PY) -m repro.cli bench --suite ingest --smoke --out /tmp/repro-bench

bench-ingest-full:
	$(PY) -m repro.cli bench --suite ingest

# Scale suite (docs/PERFORMANCE.md): streamed lazy-world compressed days
# at growing customer counts, each cell in its own subprocess for a clean
# ru_maxrss.  scale-smoke runs the 10k/100k cells at 30 minutes under a
# hard per-cell memory bound and compares against the committed
# BENCH_scale.json (host mismatches demote to warnings); -full runs all
# three cells (incl. 1M) at the full compressed day and refreshes the
# committed baseline — the 1M-within-2x-of-100k RSS gate applies to both.
scale-smoke:
	$(PY) -m repro.cli bench --suite scale --smoke --check --max-rss-mb 512

bench-scale-full:
	$(PY) -m repro.cli bench --suite scale

# Scenario matrix (docs/TESTING.md): every registered paper/adversarial/
# drift scenario through all four detector lanes.  `scenarios` refreshes
# the committed SCENARIOS.json baseline (~10 min); `scenarios-check`
# re-runs and compares without overwriting; `scenarios-ci` is the reduced
# deterministic subset CI gates on (~3 min).
scenarios:
	$(PY) -m repro.cli scenarios run

scenarios-check:
	$(PY) -m repro.cli scenarios check

scenarios-ci:
	$(PY) -m repro.cli scenarios check --ci

# Telemetry (docs/OBSERVABILITY.md): exporter selftest, and a pipeline
# run that writes a full snapshot to /tmp/repro-telemetry.json.
metrics-selftest:
	$(PY) -m repro.cli metrics --selftest

telemetry:
	$(PY) -m repro.cli pipeline --epochs 2 --telemetry /tmp/repro-telemetry.json
	$(PY) -m repro.cli metrics /tmp/repro-telemetry.json

# Serving-engine smoke (docs/SERVING.md): the same replayed deployment
# twice — once uninterrupted, once with an induced crash + restore at
# minute 180 — then a byte-identity check on the two merged alert
# streams (the crash-equivalence guarantee).
serve-smoke:
	rm -rf /tmp/repro-serve && mkdir -p /tmp/repro-serve
	$(PY) -m repro.cli serve --days 3 --customers 6 --epochs 1 --shards 2 \
	    --threshold 0.95 --alerts-out /tmp/repro-serve/alerts-base.json
	$(PY) -m repro.cli serve --days 3 --customers 6 --epochs 1 --shards 2 \
	    --threshold 0.95 --checkpoint-dir /tmp/repro-serve/ckpt \
	    --checkpoint-every 60 --restart-at 180 \
	    --telemetry /tmp/repro-serve/telemetry.json \
	    --alerts-out /tmp/repro-serve/alerts-restart.json
	cmp /tmp/repro-serve/alerts-base.json /tmp/repro-serve/alerts-restart.json
	@echo "crash-equivalence holds: alert streams byte-identical"

# Batched-lane smoke (docs/SERVING.md): the same replayed deployment
# through the batched cross-customer lane and the per-customer reference
# oracle, then a byte-identity check on the merged alert streams (the
# lane-equivalence guarantee, end to end through the CLI).
serve-batched-smoke:
	rm -rf /tmp/repro-serve-lane && mkdir -p /tmp/repro-serve-lane
	$(PY) -m repro.cli serve --days 3 --customers 6 --epochs 1 --shards 2 \
	    --threshold 0.95 --lane batched \
	    --alerts-out /tmp/repro-serve-lane/alerts-batched.json
	$(PY) -m repro.cli serve --days 3 --customers 6 --epochs 1 --shards 2 \
	    --threshold 0.95 --lane per-customer \
	    --alerts-out /tmp/repro-serve-lane/alerts-percustomer.json
	cmp /tmp/repro-serve-lane/alerts-batched.json \
	    /tmp/repro-serve-lane/alerts-percustomer.json
	@echo "lane-equivalence holds: alert streams byte-identical"

# xatulint (docs/ANALYSIS.md): the domain-aware static-analysis gate.
# Known-intentional findings live in lint-baseline.json with written
# reasons; --strict also fails on stale baseline entries.
lint:
	$(PY) -m repro.cli lint --strict

# xatuflow (docs/ANALYSIS.md): adds the interprocedural XF001-XF004
# checkers on top of the shallow rules, over a cached symbol graph.
lint-deep:
	$(PY) -m repro.cli lint --deep --strict

# Regenerate the baseline after fixing or intentionally adding findings
# (new entries get a TODO reason that must be replaced by hand).  Runs
# --deep so XF entries are captured too.
lint-baseline:
	$(PY) -m repro.cli lint --deep --write-baseline

# Tier-1 suite under the runtime sanitizer: frozen tape buffers +
# NaN/inf kernel-boundary guards (docs/ANALYSIS.md).
sanitize-test:
	REPRO_SANITIZE=1 $(PY) -m pytest -x -q -m "not slow"

verify: lint lint-deep test golden-check metrics-selftest
