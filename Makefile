# Developer entry points.  `make verify` is the pre-merge gate: the full
# tier-1 suite plus the golden differential check (docs/TESTING.md).

PY := PYTHONPATH=src python

.PHONY: verify test fast golden-check golden-record bench bench-full

test:
	$(PY) -m pytest -x -q

fast:
	$(PY) -m pytest -x -q -m "not slow"

golden-check:
	$(PY) -m repro.cli golden check

golden-record:
	$(PY) -m repro.cli golden record

# Smoke-mode microbenchmarks: exercises every case + the JSON round-trip
# in seconds without touching the committed results (docs/PERFORMANCE.md).
bench:
	$(PY) -m repro.cli bench --smoke --out /tmp/repro-bench

# Full-size run that refreshes the committed baseline.
bench-full:
	$(PY) -m repro.cli bench --tag fused

verify: test golden-check
