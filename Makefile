# Developer entry points.  `make verify` is the pre-merge gate: the full
# tier-1 suite plus the golden differential check (docs/TESTING.md).

PY := PYTHONPATH=src python

.PHONY: verify test fast golden-check golden-record

test:
	$(PY) -m pytest -x -q

fast:
	$(PY) -m pytest -x -q -m "not slow"

golden-check:
	$(PY) -m repro.cli golden check

golden-record:
	$(PY) -m repro.cli golden record

verify: test golden-check
