"""§6.1 FP inspection and §8 generality, on the trained headline artefacts.

Paper claims: 71% of Xatu's false positives coincide with overwhelming
suspicious traffic (likely attacks NetScout missed); and customers never
attacked during training (65.1% of nodes) still gain similar early
detection, because the model transfers across customers.
"""

import numpy as np

from repro.eval import classify_false_positives, generality_split, render_table
from repro.scrub import ScrubbingCenter

from .conftest import run_once


def test_fp_inspection(benchmark, headline):
    alerts = headline._test_output.alerts
    verdicts = run_once(
        benchmark, lambda: classify_false_positives(headline.trace, alerts)
    )
    n_fp = len(verdicts)
    n_suspicious = sum(1 for v in verdicts if v.likely_missed_attack)
    print()
    print(render_table(
        ["total alerts", "false positives", "likely missed attacks", "share"],
        [[len(alerts), n_fp, n_suspicious, (n_suspicious / n_fp) if n_fp else 0.0]],
        title="§6.1: false-positive inspection (paper: 71% likely missed attacks)",
    ))
    # Every verdict is well-formed; the share itself is scenario-dependent.
    for v in verdicts:
        assert v.volume_ratio >= 0.0


def test_generality_unseen_customers(benchmark, headline):
    report = ScrubbingCenter(headline.trace).account(headline._test_output.windows)
    split = run_once(
        benchmark,
        lambda: generality_split(
            headline.trace, report, headline.train_rng, headline.eval_range
        ),
    )
    rows = [
        ["seen in training", len(split.seen_delays),
         float(np.median(split.seen_effectiveness)) if len(split.seen_effectiveness) else 0.0,
         float(np.median(split.seen_delays)) if len(split.seen_delays) else 0.0],
        ["unseen in training", len(split.unseen_delays),
         float(np.median(split.unseen_effectiveness)) if len(split.unseen_effectiveness) else 0.0,
         float(np.median(split.unseen_delays)) if len(split.unseen_delays) else 0.0],
    ]
    print()
    print(render_table(
        ["customer group", "n events", "eff median", "delay median"],
        rows,
        title=f"§8 generality ({split.unseen_fraction:.0%} of customers unseen in training)",
    ))
    # Paper shape: unseen customers are still protected (if any exist).
    if len(split.unseen_effectiveness):
        assert np.median(split.unseen_effectiveness) >= 0.2
