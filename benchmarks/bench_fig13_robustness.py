"""Figure 13: robustness to volume-changing and rate-changing attackers.

Paper shape: with auxiliary signals Xatu's median effectiveness stays at
100% and median delay ~0 as attackers shrink ramp-up volume or change dR;
without auxiliary signals effectiveness drops (up to 6%) and delay grows
(2-7 minutes) as the volumetric signal weakens.
"""

import numpy as np

from repro.eval import render_table, run_rate_sweep, run_volume_sweep

from .conftest import make_pipeline_config, run_once


# Replica note: the compressed validation split holds ~15 events, so the
# threshold calibration needs a looser overhead bound than the headline
# bench to generalize to the test split (the paper calibrates on ~1.8K
# validation attacks).
BOUND = 0.25


def test_fig13ab_volume_changing_attackers(benchmark):
    config = make_pipeline_config(epochs=5, overhead_bound=BOUND)
    points = run_once(benchmark, lambda: run_volume_sweep(config, scales=[1.0, 0.4]))
    print()
    print(render_table(
        ["rampup volume scale", "variant", "eff median", "eff p90",
         "delay median", "delay p90"],
        [
            [p.value, p.variant, p.effectiveness_median, p.effectiveness_p90,
             p.delay_median, p.delay_p90]
            for p in points
        ],
        title="Figure 13(a)/(b): volume-changing attackers",
    ))
    by_key = {(p.value, p.variant): p for p in points}
    # Paper shape: Xatu's effectiveness stays high as attackers shrink the
    # ramp-up volume (median and 90th percentile stay at 100% in the
    # paper).  The relative no-aux comparison is too noisy at replica
    # sample sizes to assert, so the absolute robustness claim is checked.
    full = by_key[(1.0, "xatu")].effectiveness_median
    evaded = by_key[(0.4, "xatu")].effectiveness_median
    assert evaded >= 0.5
    assert full - evaded <= 0.3


def test_fig13cd_rate_changing_attackers(benchmark):
    config = make_pipeline_config(epochs=5, overhead_bound=BOUND)
    points = run_once(benchmark, lambda: run_rate_sweep(config, rates=[0.5, 2.5]))
    print()
    print(render_table(
        ["dR", "variant", "eff median", "eff p90", "delay median", "delay p90"],
        [
            [p.value, p.variant, p.effectiveness_median, p.effectiveness_p90,
             p.delay_median, p.delay_p90]
            for p in points
        ],
        title="Figure 13(c)/(d): rate-changing attackers",
    ))
    # Paper shape: Xatu's effectiveness stays high at both slow and fast ramps.
    for p in points:
        if p.variant == "xatu":
            assert p.effectiveness_median >= 0.3, f"dR={p.value}"
