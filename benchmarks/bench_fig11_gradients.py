"""Figure 11: input-gradient attribution — auxiliary signals drive early alerts.

Paper shape: for a UDP attack, the A2 (previous attackers) gradient in
LSTM_med is high ~22 hours before the anomaly start, and LSTM_short picks
up A2 activity ~10 hours before, while the volumetric gradient only rises
when the flood itself begins.
"""

import numpy as np

from repro.eval import input_gradients, render_table

from .conftest import run_once


def test_fig11_gradient_attribution(benchmark, headline):
    trace = headline.trace
    model = headline.model
    extractor = headline.extractor
    scaler = headline.train_set.scaler
    lookback = model.config.lookback_minutes

    # Pick the latest event with a full lookback window before onset.
    event = None
    for candidate in sorted(trace.events, key=lambda e: -e.onset):
        if candidate.onset >= lookback:
            event = candidate
            break
    assert event is not None

    raw = extractor.window(event.customer_id, event.onset - lookback, event.onset)
    scaled = scaler.transform(raw)
    attribution = run_once(benchmark, lambda: input_gradients(model, scaled))

    # Aggregate |gradient| per group over early vs late thirds of the window.
    third = lookback // 3
    rows = []
    for group in attribution.groups:
        series = attribution.group_series(group)
        rows.append([group, float(series[:third].mean()), float(series[-third:].mean())])
    print()
    print(render_table(
        ["feature group", "early-window |grad|", "late-window |grad|"],
        rows, title=f"Figure 11: gradient attribution ({event.attack_type.value})",
    ))
    magnitudes = attribution.magnitude
    assert magnitudes.shape == (lookback, len(attribution.groups))
    assert np.isfinite(magnitudes).all()
    # Paper shape: auxiliary groups carry nonzero gradient well before onset.
    aux_cols = [attribution.groups.index(g) for g in ("A1", "A2", "A3", "A4", "A5")]
    assert magnitudes[:third, aux_cols].sum() > 0
