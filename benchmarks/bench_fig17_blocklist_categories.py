"""Figure 17: contribution of individual A1 blocklist categories.

Paper shape: the three prevalent categories (DDoS-source, bot, scanner
lists) each bring most of the A1 improvement for UDP/TCP attack types; DNS
amplification and ICMP benefit little from any blocklist.
"""

from repro.eval import render_table, run_blocklist_breakdown
from repro.signals import BLOCKLIST_CATEGORIES

from .conftest import make_pipeline_config, run_once

CATEGORIES = list(BLOCKLIST_CATEGORIES[:3])  # ddos_source, bot_generic, scanner


def test_fig17_blocklist_category_breakdown(benchmark):
    config = make_pipeline_config(epochs=4)
    results = run_once(
        benchmark, lambda: run_blocklist_breakdown(config, categories=CATEGORIES)
    )
    print()
    print(render_table(
        ["A1 restricted to", "eff p10", "eff median", "listed /24s"],
        [
            [r.category, r.effectiveness_p10, r.effectiveness_median, r.n_listed_subnets]
            for r in results
        ],
        title="Figure 17: per-blocklist-category contribution",
    ))
    by_cat = {r.category: r for r in results}
    assert "all_categories" in by_cat
    # Paper shape: single categories carry fewer listed subnets than the
    # union, and the pipeline still trains and detects with each.
    for category in CATEGORIES:
        assert by_cat[category].n_listed_subnets <= by_cat["all_categories"].n_listed_subnets
        assert 0.0 <= by_cat[category].effectiveness_median <= 1.0
