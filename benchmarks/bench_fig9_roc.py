"""Figure 9: ROC comparison of Xatu and the RF baseline.

Paper shape: at 4.8% false positive rate Xatu reaches 95.4% true positive
rate while RF reaches 88.6% — Xatu's curve dominates RF's.
"""

import numpy as np

from repro.eval import render_table

from .conftest import run_once


def test_fig9_roc(benchmark, headline):
    points = run_once(benchmark, headline.roc)
    rows = []
    for point in points:
        # TPR at ~5% FPR, the paper's operating point.
        idx = int(np.searchsorted(point.fpr, 0.05, side="right")) - 1
        tpr_at_5 = float(point.tpr[max(0, idx)])
        rows.append([point.system, point.auc, tpr_at_5])
    print()
    print(render_table(
        ["system", "AUC", "TPR @ 5% FPR"],
        rows, title="Figure 9: ROC — Xatu vs RF",
    ))
    by_system = {r[0]: r for r in rows}
    # Paper shape: Xatu's ROC dominates RF's.
    assert by_system["xatu"][1] >= by_system["rf"][1] - 0.02
    assert by_system["xatu"][1] > 0.5  # far better than chance
