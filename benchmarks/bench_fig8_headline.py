"""Figure 8: effectiveness / delay / overhead across overhead bounds.

Paper shape: Xatu's effectiveness is 39.6-53.8% above NetScout and
25.9-38.8% above FastNetMon across bounds; Xatu's median delay is 1-2
minutes vs NetScout's 11.5 and FNM's 5; the 75th-percentile overhead stays
within the configured bound; RF trails Xatu at the same bounds.
"""

import numpy as np

from repro.eval import render_table

from .conftest import run_once

BOUNDS = [0.02, 0.1, 0.5]
# The tightest bound is printed for completeness but excluded from the
# win-assertions: with tens (not thousands) of validation events, the
# calibrated threshold can over-conserve on the test split at 2% overhead
# (the paper calibrates on ~1.8K validation attacks).
ASSERT_BOUNDS = [0.1, 0.5]


def test_fig8_headline_sweep(benchmark, headline):
    rows = run_once(benchmark, lambda: headline.sweep(BOUNDS))
    print()
    print(render_table(
        ["bound", "system", "eff p10", "eff med", "eff p90",
         "delay p10", "delay med", "delay p90", "ovh p25", "ovh med", "ovh p75"],
        [
            [m.overhead_bound, m.system,
             m.effectiveness_p10, m.effectiveness_median, m.effectiveness_p90,
             m.delay_p10, m.delay_median, m.delay_p90,
             m.overhead_p25, m.overhead_median, m.overhead_p75]
            for m in rows
        ],
        title="Figure 8: CDet vs FNM vs RF vs Xatu across overhead bounds",
    ))
    by_key = {(m.system, m.overhead_bound): m for m in rows}
    # Paper shape 1: Xatu beats both CDets on median effectiveness at every
    # bound (CDet metrics do not depend on the bound).
    for bound in ASSERT_BOUNDS:
        xatu = by_key[("xatu", bound)]
        assert xatu.effectiveness_median >= by_key[("netscout", bound)].effectiveness_median
        assert xatu.effectiveness_median >= by_key[("fastnetmon", bound)].effectiveness_median
    # Paper shape 2: Xatu's median delay beats NetScout's at the loosest bound.
    loose = BOUNDS[-1]
    assert by_key[("xatu", loose)].delay_median <= by_key[("netscout", loose)].delay_median
    # Paper shape 3: at the loosest bound Xatu matches-or-beats RF.
    assert (
        by_key[("xatu", loose)].effectiveness_median
        >= by_key[("rf", loose)].effectiveness_median - 0.05
    )
