"""Figure 18: sensitivity analysis on Xatu's components and parameters.

Paper shape: (a) Xatu trained from NetScout vs FastNetMon labels performs
comparably; (b) dropping LSTM_short hurts the most; (c) the default
timescales beat much larger pooling windows; (d) the survival loss beats
BCE; (e) effectiveness saturates with enough hidden units; (f) a too-short
history hurts the tail while longer histories add little.
"""

import pytest

from repro.eval import SensitivityExperiment, render_table

from .conftest import make_pipeline_config, run_once


@pytest.fixture(scope="module")
def sensitivity():
    # Looser bound than the headline bench: each sensitivity point trains
    # on the same ~15-event validation split, and a tight bound makes the
    # calibrated threshold over-conserve on test (see EXPERIMENTS.md).
    return SensitivityExperiment(make_pipeline_config(epochs=4, overhead_bound=0.25))


def _show(points, title):
    print()
    print(render_table(
        ["sweep", "setting", "eff p10", "eff median", "eff p90", "delay median"],
        [
            [p.sweep, p.setting, p.effectiveness_p10, p.effectiveness_median,
             p.effectiveness_p90, p.delay_median]
            for p in points
        ],
        title=title,
    ))


def test_fig18a_cdet_choice(benchmark, sensitivity):
    points = run_once(benchmark, sensitivity.cdet_choice)
    _show(points, "Figure 18(a): label source (NetScout vs FastNetMon)")
    by_setting = {p.setting: p for p in points}
    # Paper shape: Xatu works when trained from either CDet's labels ("Xatu
    # is independent of CDet").  With tens of label events per source the
    # medians are noisy, so the assertion is that both label sources yield
    # a functioning detector rather than a tight equality.
    assert by_setting["netscout"].effectiveness_median >= 0.3
    assert by_setting["fastnetmon"].effectiveness_median >= 0.3


def test_fig18b_lstm_contribution(benchmark, sensitivity):
    points = run_once(benchmark, sensitivity.lstm_contribution)
    _show(points, "Figure 18(b): dropping one timescale LSTM at a time")
    by_setting = {p.setting: p for p in points}
    assert "all" in by_setting and len(points) == 4


def test_fig18c_timescale_choice(benchmark, sensitivity):
    points = run_once(benchmark, sensitivity.timescale_choice)
    _show(points, "Figure 18(c): pooling timescale variants")
    by_setting = {p.setting: p for p in points}
    # Paper shape: much larger pooling windows do not beat the default.
    assert (
        by_setting["default"].effectiveness_median
        >= by_setting["larger"].effectiveness_median - 0.20
    )


def test_fig18d_survival_vs_bce(benchmark, sensitivity):
    points = run_once(benchmark, sensitivity.survival_vs_classification)
    _show(points, "Figure 18(d): survival loss vs classification loss")
    by_setting = {p.setting: p for p in points}
    # Paper shape: the survival model is at least competitive with BCE.
    assert (
        by_setting["survival"].effectiveness_median
        >= by_setting["bce"].effectiveness_median - 0.15
    )


def test_fig18e_hidden_units(benchmark, sensitivity):
    points = run_once(benchmark, lambda: sensitivity.hidden_units([4, 16]))
    _show(points, "Figure 18(e): hidden units")
    for p in points:
        assert 0.0 <= p.effectiveness_median <= 1.0


def test_ablation_pooling_operator(benchmark, sensitivity):
    """Extension ablation: avg (paper) vs max pooling in the Fig-6
    aggregation stage."""
    points = run_once(benchmark, sensitivity.pooling_choice)
    _show(points, "Extension: pooling operator (avg vs max)")
    by_setting = {p.setting: p for p in points}
    assert set(by_setting) == {"avg", "max"}
    for p in points:
        assert 0.0 <= p.effectiveness_median <= 1.0


def test_fig18f_history_length(benchmark, sensitivity):
    points = run_once(benchmark, lambda: sensitivity.history_length([6, 12]))
    _show(points, "Figure 18(f): history length (long-LSTM span)")
    assert len(points) == 2
    for p in points:
        assert 0.0 <= p.effectiveness_median <= 1.0
