"""Figures 15 and 16: auxiliary signal observation (Appendix B).

Paper shape (Fig 15): the fraction of eventual attackers already active
toward the victim rises as the attack approaches (e.g. blocklisted-source
reappearance grows from ~66% five days out to ~93% one day out).
(Fig 16): the bipartite clustering coefficient of attacker groups vs
customers increases approaching detection (4.8e-3 at t-15 to 11.8e-3 at
detection, in the paper's example).
"""

import numpy as np

from repro.eval import attacker_activity_by_day, clustering_timeline, render_series

from .conftest import run_once


def test_fig15_attacker_activity_by_day(benchmark, bench_trace):
    days_back = int(bench_trace.config.prep_days)
    activity = run_once(
        benchmark, lambda: attacker_activity_by_day(bench_trace, days_back=days_back)
    )
    days = [f"-{d + 1}" for d in range(days_back)]
    print()
    print(render_series(
        "day", days,
        {k: [float(x) for x in v] for k, v in activity.items()},
        title="Figure 15: fraction of eventual attackers active, by day before attack",
    ))
    # Paper shape: activity closest to the attack >= activity farthest out.
    for name, series in activity.items():
        if series.max() > 0:
            assert series[0] >= series[-1] - 0.2, name


def test_fig16_clustering_coefficient_rise(benchmark, bench_trace):
    offsets = [15, 10, 5, 0]
    timeline = run_once(
        benchmark, lambda: clustering_timeline(bench_trace, minutes_before=offsets)
    )
    print()
    print(render_series(
        "minutes before detection", [str(o) for o in sorted(offsets, reverse=True)],
        {
            "cc_dot": [float(timeline[o][0]) for o in sorted(offsets, reverse=True)],
            "cc_min": [float(timeline[o][1]) for o in sorted(offsets, reverse=True)],
            "cc_max": [float(timeline[o][2]) for o in sorted(offsets, reverse=True)],
        },
        title="Figure 16: clustering coefficient approaching detection",
    ))
    # Paper shape: the coefficient at detection >= 15 minutes before it.
    assert timeline[0][0] >= timeline[15][0] - 1e-9
