"""Table 2: number of attacks per type in the chronological 50/20/30 split.

Paper shape: TCP ACK dominates (62%), then UDP flood (26.3%), DNS
amplification (7.2%); every type appears in all three splits at ISP scale.
"""

from repro.eval import render_table, split_table
from repro.synth import ATTACK_TYPE_MIX

from .conftest import run_once


def test_table2_attack_split(benchmark, bench_trace):
    table = run_once(benchmark, lambda: split_table(bench_trace))
    rows = []
    total = sum(sum(row.values()) for row in table.values())
    for type_name, row in table.items():
        n = sum(row.values())
        rows.append([type_name, f"{n / total:.1%}" if total else "0%",
                     row["train"], row["val"], row["test"], n])
    print()
    print(render_table(
        ["attack type", "%", "train", "val", "test", "total"],
        rows, title="Table 2: attacks per type per split",
    ))
    assert total == len(bench_trace.events)
    # Paper shape: the configured mix puts TCP ACK and UDP flood on top.
    counts = {k: sum(v.values()) for k, v in table.items()}
    top_two = sorted(counts, key=counts.get, reverse=True)[:2]
    assert set(top_two) <= {"tcp_ack", "udp_flood", "dns_amplification"}
