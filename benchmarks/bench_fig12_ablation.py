"""Figure 12: contribution of each auxiliary signal and ML design choice.

Paper shape: every auxiliary signal raises effectiveness over the no-aux
baseline (biggest gains from A4+A5 for UDP/DNS-amp due to serial attacks,
from A1/A2 for the TCP variants); the survival loss beats plain
classification; the multi-timescale LSTM beats LSTM_short alone.
"""

from repro.eval import AblationExperiment, AblationVariant, render_table

from .conftest import make_pipeline_config, run_once

VARIANTS = (
    AblationVariant("no_aux", enabled_groups=frozenset({"V"})),
    AblationVariant("V+A1", enabled_groups=frozenset({"V", "A1"})),
    AblationVariant("V+A2", enabled_groups=frozenset({"V", "A2"})),
    AblationVariant("V+A4+A5", enabled_groups=frozenset({"V", "A4", "A5"})),
    AblationVariant("no_survival", loss="bce"),
    AblationVariant("short_only", timescales_subset=(0,)),
    AblationVariant("xatu_full"),
)


def test_fig12_signal_and_design_ablation(benchmark):
    experiment = AblationExperiment(make_pipeline_config(epochs=5))
    results = run_once(benchmark, lambda: experiment.run(VARIANTS))
    print()
    print(render_table(
        ["variant", "eff p10", "eff median", "eff p90", "delay median", "n"],
        [
            [r.variant, r.effectiveness_p10, r.effectiveness_median,
             r.effectiveness_p90, r.delay_median, r.n_events]
            for r in results
        ],
        title="Figure 12: ablation of auxiliary signals and ML design",
    ))
    by_name = {r.variant: r for r in results}
    full = by_name["xatu_full"]
    # Paper shape: full Xatu >= the volumetric-only baseline.
    assert full.effectiveness_median >= by_name["no_aux"].effectiveness_median - 0.05
    # Paper shape: full Xatu >= the single-timescale variant.
    assert full.effectiveness_median >= by_name["short_only"].effectiveness_median - 0.10
