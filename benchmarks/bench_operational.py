"""§5.3 operational performance: feature extraction and detection latency.

Paper claims: extracting all features for one customer-minute takes ~50 ms
on one CPU thread, and each detection runs within 10 ms.  These benches
measure the reproduction's counterparts (multi-round, since they are cheap
enough to time properly).
"""

import numpy as np
import pytest

from repro.signals import FeatureExtractor


@pytest.fixture(scope="module")
def operational(headline):
    trace = headline.trace
    extractor = headline.extractor
    model = headline.model
    scaler = headline.train_set.scaler
    customer = trace.world.customers[0].customer_id
    lookback = model.config.lookback_minutes
    end = trace.horizon - 1
    return trace, extractor, model, scaler, customer, lookback, end


def test_feature_window_extraction_latency(benchmark, operational):
    """Materializing one (lookback, 273) window for one customer."""
    _trace, extractor, _model, _scaler, customer, lookback, end = operational
    block = benchmark(extractor.window, customer, end - lookback, end)
    assert block.shape[1] == 273


def test_detection_forward_latency(benchmark, operational):
    """One model forward (a detect_window of hazards) from a ready window."""
    _trace, extractor, model, scaler, customer, lookback, end = operational
    x = scaler.transform(extractor.window(customer, end - lookback, end))[None]
    hazards = benchmark(model.hazards_np, x)
    assert hazards.shape == (1, model.config.detect_window)
    # Per-minute amortized cost = forward / detect_window; the paper's
    # 10 ms/detection bound corresponds to this amortized figure.


def test_survival_threshold_rule_latency(benchmark, operational):
    """The per-minute alert rule itself (rolling hazard sum) is trivial."""
    rng = np.random.default_rng(0)
    hazards = np.abs(rng.normal(size=10000)) * 0.05

    def rule():
        csum = np.concatenate([[0.0], np.cumsum(hazards)])
        window = 10
        rolling = csum[window:] - csum[:-window]
        return (np.exp(-rolling) < 0.5).sum()

    benchmark(rule)
