"""§8 limitation: a determined attacker who minimizes auxiliary signals.

The paper argues a fully-evasive attacker (brand-new sources every attack,
no preparation probes, random timing) is possible but economically
unlikely.  This bench quantifies the limitation on the reproduction: with
``fresh_sources`` and ``skip_preparation`` enabled, Xatu's advantage over
its volumetric signal shrinks — gracefully, not catastrophically.
"""

import dataclasses

from repro.core import XatuPipeline
from repro.eval import render_table

from .conftest import make_pipeline_config, run_once


def _run(config):
    return XatuPipeline(config).run()


def test_limitation_fully_evasive_attacker(benchmark):
    base = make_pipeline_config(epochs=5, overhead_bound=0.25)
    evasive = dataclasses.replace(
        base,
        scenario=dataclasses.replace(
            base.scenario, fresh_sources=True, skip_preparation=True
        ),
    )

    def both():
        return _run(base), _run(evasive)

    normal, evaded = run_once(benchmark, both)
    print()
    print(render_table(
        ["scenario", "eff p10", "eff median", "delay median", "overhead p75"],
        [
            ["normal attackers", normal.effectiveness.low,
             normal.effectiveness.median, normal.delay.median, normal.overhead.high],
            ["fully evasive (§8)", evaded.effectiveness.low,
             evaded.effectiveness.median, evaded.delay.median, evaded.overhead.high],
        ],
        title="§8 limitation: evasive attackers minimize auxiliary signals",
    ))
    # Graceful degradation: the pipeline still detects (volumetric signal
    # remains), it just loses part of the auxiliary boost.
    assert 0.0 <= evaded.effectiveness.median <= 1.0
    assert evaded.effectiveness.median >= 0.2
