"""Figures 4(a) and 4(b): attack preparation signals and type transitions.

Paper shape (Fig 4a): blocklisted / previous-attacker / spoofed sources
convert to actual attackers in 65.7% / 80% / 26.3% of attacks; about half
of attacks have most attackers carrying the A1/A2 signals.  (Fig 4b): 97.9%
of consecutive attack pairs on a customer repeat the same type.
"""

import numpy as np

from repro.eval import prep_signal_census, render_table, same_type_share, transition_matrix

from .conftest import run_once


def test_fig4a_prep_signals(benchmark, bench_trace):
    census = run_once(benchmark, lambda: prep_signal_census(bench_trace))
    rows = []
    for name, getter in (
        ("blocklisted (A1)", lambda r: r.blocklisted_fraction),
        ("previous attackers (A2)", lambda r: r.previous_attacker_fraction),
        ("spoofed (A3)", lambda r: r.spoofed_fraction),
    ):
        values = np.array([getter(r) for r in census])
        rows.append([
            name,
            float(np.median(values)),
            float((values > 0).mean()),
        ])
    print()
    print(render_table(
        ["signal", "median attacker fraction", "share of attacks w/ signal"],
        rows, title="Figure 4(a): attack preparation signals",
    ))
    by_name = {r[0]: r for r in rows}
    # Paper shape: A1 and A2 are the strong signals, A3 weaker (only
    # obviously-spoofed traffic is identifiable).
    assert by_name["blocklisted (A1)"][2] > 0.5
    assert by_name["previous attackers (A2)"][2] > 0.3
    assert by_name["spoofed (A3)"][1] <= by_name["blocklisted (A1)"][1]


def test_fig4b_type_transitions(benchmark, bench_trace):
    matrix, types, pairs = run_once(benchmark, lambda: transition_matrix(bench_trace))
    rows = []
    for i, t in enumerate(types):
        if matrix[i].sum() > 0:
            rows.append([t.value, matrix[i, i]])
    share = same_type_share(bench_trace)
    print()
    print(render_table(
        ["attack type", "P(next attack same type)"],
        rows,
        title=(
            f"Figure 4(b): type transitions over {pairs} pairs "
            f"(same-type share {share:.1%}; paper: 97.9%)"
        ),
    ))
    # Paper shape: consecutive pairs overwhelmingly repeat the same type.
    # The paper's 97.9% is the count-weighted share; at replica scale
    # interleaved campaigns on shared customers dilute it, but the
    # majority-same-type shape must hold.
    assert pairs > 0
    assert share > 0.5
