"""Figure 10: per-attack-type effectiveness and delay at a 0.1% bound.

Paper shape: Xatu achieves high median effectiveness for every type (100%
for UDP floods vs NetScout's 75.2% / FNM's 84.6%; 82.2-100% for the TCP
variants vs the CDets' 58.6-89%), and lower delays throughout; ICMP floods
are easy for everyone (100% across systems).
"""

from repro.eval import render_table

from .conftest import run_once


def test_fig10_per_type(benchmark, headline):
    per_type = run_once(benchmark, lambda: headline.per_type(overhead_bound=0.1))
    rows = []
    for type_name, metrics in per_type.items():
        for m in metrics:
            rows.append([type_name, m.system, m.effectiveness_median, m.delay_median, m.n_events])
    print()
    print(render_table(
        ["attack type", "system", "eff median", "delay median", "n events"],
        rows, title="Figure 10: per-attack-type comparison @ 0.1 bound",
    ))
    assert per_type, "at least one attack type must have test events"
    # Paper shape: per type, Xatu's effectiveness >= the worst CDet's.
    for type_name, metrics in per_type.items():
        by_system = {m.system: m for m in metrics}
        floor = min(
            by_system["netscout"].effectiveness_median,
            by_system["fastnetmon"].effectiveness_median,
        )
        assert by_system["xatu"].effectiveness_median >= floor - 0.05, type_name
