"""Figure 3: naive uniform early detection — effectiveness vs overhead.

Paper shape: shifting all CDet alerts ~15 minutes earlier reaches ~100%
effectiveness but costs 8-12% extra scrubbing; 3 minutes early keeps
overhead ~1% at ~75% effectiveness.  Short attacks gain the most
effectiveness; long attacks pay the most overhead.
"""

from repro.eval import render_table, run_naive_early

from .conftest import run_once


def test_fig3_naive_early_tradeoff(benchmark, bench_trace):
    points = run_once(
        benchmark, lambda: run_naive_early(bench_trace, [0, 3, 6, 9, 12, 15])
    )
    rows = [
        [p.minutes_early, p.duration_class, p.effectiveness_median, p.overhead_mean, p.n_events]
        for p in points
    ]
    print()
    print(render_table(
        ["minutes early", "duration class", "eff median", "overhead mean", "n"],
        rows, title="Figure 3: naive early detection trade-off",
    ))

    overall = [p for p in points if p.duration_class == "overall"]
    eff = [p.effectiveness_median for p in overall]
    ovh = [p.overhead_mean for p in overall]
    # Paper shape: effectiveness and overhead both rise with earliness.
    assert eff == sorted(eff)
    assert ovh[-1] >= ovh[0]
    assert eff[-1] >= 0.95  # ~ideal effectiveness at max shift
