"""Shared benchmark fixtures.

Heavy artefacts (the synthetic trace, the trained headline experiment) are
session-scoped so each figure's bench measures its own analysis, not
redundant setup.  Benches run the compressed replica presets; the printed
rows are the reproduction's counterpart of each paper figure (see
EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, TrainConfig
from repro.eval import HeadlineExperiment, bench_model_config, bench_scenario, tiny_scenario
from repro.synth import TraceGenerator


@pytest.fixture(scope="session")
def bench_trace():
    """The census trace (Figures 3/4/15/16, Table 2)."""
    return TraceGenerator(bench_scenario(seed=3)).materialize()


def make_pipeline_config(seed: int = 3, overhead_bound: float = 0.1, epochs: int = 6):
    return PipelineConfig(
        scenario=tiny_scenario(seed=seed),
        model=bench_model_config(),
        train=TrainConfig(epochs=epochs, batch_size=8, learning_rate=3e-3),
        overhead_bound=overhead_bound,
    )


@pytest.fixture(scope="session")
def headline():
    """One trained HeadlineExperiment shared by Figures 8, 9, and 10."""
    experiment = HeadlineExperiment(make_pipeline_config())
    experiment.prepare()
    return experiment


def run_once(benchmark, fn):
    """Benchmark an expensive analysis with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
