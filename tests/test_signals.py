"""Unit tests for blocklists, history stores, clustering, and features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow import ip_to_int, subnet24
from repro.signals import (
    BLOCKLIST_CATEGORIES,
    AlertRecord,
    AttackerCustomerGraph,
    AttackHistoryStore,
    BlocklistDirectory,
    FeatureExtractor,
    FeatureScaler,
    N_FEATURES,
    PreviousAttackerStore,
    SEVERITIES,
    bipartite_clustering,
    feature_names,
    group_slices,
    severity_of,
)
from repro.synth import AttackType


class TestBlocklistDirectory:
    def make(self, recall=1.0, false_rate=0.0):
        rng = np.random.default_rng(7)
        malicious = {ip_to_int("45.0.0.1") + i * 256 for i in range(50)}
        benign = np.array([ip_to_int("20.0.0.1") + i * 256 for i in range(100)])
        directory = BlocklistDirectory(recall=recall, false_rate=false_rate, rng=rng)
        directory.populate(malicious, benign)
        return directory, malicious

    def test_full_recall_lists_all(self):
        directory, malicious = self.make(recall=1.0)
        assert all(a in directory for a in malicious)

    def test_partial_recall_misses_some(self):
        directory, malicious = self.make(recall=0.5)
        listed = sum(1 for a in malicious if a in directory)
        assert 10 < listed < 45

    def test_false_rate_lists_benign(self):
        directory, _ = self.make(recall=1.0, false_rate=0.2)
        benign = [ip_to_int("20.0.0.1") + i * 256 for i in range(100)]
        assert any(a in directory for a in benign)

    def test_membership_is_per_slash24(self):
        directory, malicious = self.make()
        addr = next(iter(malicious))
        sibling = subnet24(addr) + 200  # same /24, different host
        assert directory.is_listed(sibling)

    def test_categories_of_listed_address(self):
        directory, malicious = self.make()
        addr = next(iter(malicious))
        cats = directory.categories_of(addr)
        assert cats and all(c in BLOCKLIST_CATEGORIES for c in cats)

    def test_unknown_category_raises(self):
        directory, malicious = self.make()
        with pytest.raises(KeyError):
            directory.is_listed(next(iter(malicious)), "nonexistent")

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BlocklistDirectory(recall=1.5)
        with pytest.raises(ValueError):
            BlocklistDirectory(false_rate=-0.1)

    def test_category_sizes_cover_all(self):
        directory, _ = self.make()
        sizes = directory.category_sizes()
        assert set(sizes) == set(BLOCKLIST_CATEGORIES)
        assert sum(sizes.values()) >= len(directory)


def alert(customer=0, type_=AttackType.UDP_FLOOD, detect=100, end=110,
          peak=1e6, attackers=(1, 2, 3)):
    return AlertRecord(
        customer_id=customer, attack_type=type_, detect_minute=detect,
        end_minute=end, peak_bytes=peak, attackers=frozenset(attackers),
    )


class TestPreviousAttackerStore:
    def test_members_effective_after_end(self):
        store = PreviousAttackerStore()
        store.add_alert(alert(end=110, attackers=(7, 8)))
        assert store.members_at(0, 109) == set()
        assert store.members_at(0, 110) == {7, 8}

    def test_union_over_alerts(self):
        store = PreviousAttackerStore()
        store.add_alert(alert(end=10, attackers=(1,)))
        store.add_alert(alert(end=20, attackers=(2,)))
        assert store.members_at(0, 15) == {1}
        assert store.members_at(0, 25) == {1, 2}

    def test_per_customer_isolation(self):
        store = PreviousAttackerStore()
        store.add_alert(alert(customer=1, end=10, attackers=(5,)))
        assert store.members_at(0, 100) == set()
        assert store.is_previous_attacker(1, 5, 100)
        assert not store.is_previous_attacker(1, 6, 100)


class TestAttackHistoryStore:
    def test_severity_buckets(self):
        assert severity_of(1e6, 1e6) == "low"
        assert severity_of(1e7, 1e6) == "medium"
        assert severity_of(1e8, 1e6) == "high"
        assert severity_of(1.0, 0.0) == "high"

    def test_features_shape_and_placement(self):
        store = AttackHistoryStore(decay_minutes=100)
        store.add_alert(alert(type_=AttackType.TCP_SYN, end=50, peak=1e8), base_rate=1e6)
        features = store.features_at(0, 50)
        assert features.shape == (18,)
        types = list(AttackType)
        idx = types.index(AttackType.TCP_SYN) * 3 + SEVERITIES.index("high")
        assert features[idx] == pytest.approx(1.0)
        assert features.sum() == pytest.approx(1.0)

    def test_exponential_decay(self):
        store = AttackHistoryStore(decay_minutes=100)
        store.add_alert(alert(end=0), base_rate=1e6)
        f0 = store.features_at(0, 0).sum()
        f100 = store.features_at(0, 100).sum()
        assert f100 == pytest.approx(f0 * np.exp(-1.0))

    def test_block_matches_pointwise(self):
        """Property: the incremental block equals per-minute features_at."""
        store = AttackHistoryStore(decay_minutes=37)
        rng = np.random.default_rng(2)
        types = list(AttackType)
        for _ in range(6):
            end = int(rng.integers(0, 200))
            store.add_alert(
                alert(type_=types[int(rng.integers(len(types)))], end=end,
                      peak=float(rng.uniform(1e5, 1e9))),
                base_rate=1e6,
            )
        block = store.feature_block(0, 50, 120)
        for t in range(0, 70, 7):
            assert block[t] == pytest.approx(store.features_at(0, 50 + t), rel=1e-9)

    def test_future_alerts_invisible(self):
        store = AttackHistoryStore()
        store.add_alert(alert(end=500), base_rate=1e6)
        assert store.features_at(0, 100).sum() == 0
        assert store.alerts_before(0, 100) == 0
        assert store.alerts_before(0, 600) == 1

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            AttackHistoryStore(decay_minutes=0)


class TestBipartiteClustering:
    def test_identical_neighbors_full_overlap(self):
        n = {1: frozenset({"a", "b"}), 2: frozenset({"a", "b"})}
        coeffs = bipartite_clustering(n)
        assert coeffs[1] == (1.0, 1.0, 1.0)

    def test_disjoint_neighbors_zero(self):
        n = {1: frozenset({"a"}), 2: frozenset({"b"})}
        coeffs = bipartite_clustering(n)
        assert coeffs[1] == (0.0, 0.0, 0.0)

    def test_partial_overlap_hand_computed(self):
        n = {1: frozenset({"a", "b"}), 2: frozenset({"b", "c", "d"})}
        dot, mn, mx = bipartite_clustering(n)[1]
        assert dot == pytest.approx(1 / 4)  # |∩|=1, |∪|=4
        assert mn == pytest.approx(1 / 2)
        assert mx == pytest.approx(1 / 3)

    def test_min_geq_dot_geq_nothing(self):
        """Invariant: cc_min >= cc_dot and cc_min >= cc_max."""
        rng = np.random.default_rng(3)
        groups = list("abcdefgh")
        n = {
            i: frozenset(rng.choice(groups, size=rng.integers(1, 5), replace=False))
            for i in range(6)
        }
        for dot, mn, mx in bipartite_clustering(n).values():
            assert mn >= dot - 1e-12
            assert mn >= mx - 1e-12

    def test_empty_neighbors(self):
        assert bipartite_clustering({1: frozenset()})[1] == (0.0, 0.0, 0.0)


class TestAttackerCustomerGraph:
    def test_window_expiry(self):
        graph = AttackerCustomerGraph(window_minutes=10)
        graph.add_alert(0, 1, {ip_to_int("45.0.0.1")})
        graph.add_alert(0, 2, {ip_to_int("45.0.0.2")})  # same /24!
        assert graph.features_at(1, 5).sum() > 0
        assert graph.features_at(1, 20).sum() == 0

    def test_same_slash24_counts_as_shared_group(self):
        graph = AttackerCustomerGraph(window_minutes=100)
        graph.add_alert(0, 1, {ip_to_int("45.0.0.1")})
        graph.add_alert(0, 2, {ip_to_int("45.0.0.99")})
        assert graph.features_at(1, 1) == pytest.approx([1.0, 1.0, 1.0])

    def test_block_stride_reuses_values(self):
        graph = AttackerCustomerGraph(window_minutes=50)
        graph.add_alert(10, 1, {ip_to_int("45.0.0.1")})
        graph.add_alert(10, 2, {ip_to_int("45.0.0.2")})
        block = graph.feature_block(1, 0, 30, stride=10)
        assert block.shape == (30, 3)
        assert (block[10:20] == block[10]).all()

    def test_empty_attackers_ignored(self):
        graph = AttackerCustomerGraph()
        graph.add_alert(0, 1, set())
        assert graph.features_at(1, 1).sum() == 0

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            AttackerCustomerGraph(window_minutes=0)


class TestFeatureLayout:
    def test_total_width(self):
        assert N_FEATURES == 273
        assert len(feature_names()) == 273

    def test_group_slices_partition(self):
        slices = group_slices()
        covered = sorted(
            i for s in slices.values() for i in range(s.start, s.stop)
        )
        assert covered == list(range(273))

    def test_names_prefixed_by_group(self):
        names = feature_names()
        slices = group_slices()
        for group, sl in slices.items():
            assert all(n.startswith(group + ".") for n in names[sl])


class TestFeatureExtractor:
    def test_unknown_group_rejected(self, trace):
        with pytest.raises(ValueError, match="unknown feature groups"):
            FeatureExtractor(trace, enabled_groups=frozenset({"V", "Z9"}))

    def test_disabled_groups_zero(self, trace):
        fx = FeatureExtractor(trace, enabled_groups=frozenset({"V"}))
        event = trace.events[-1]
        block = fx.window(event.customer_id, event.onset - 50, event.onset)
        slices = group_slices()
        assert block[:, slices["V"]].sum() > 0
        for g in ("A1", "A2", "A3", "A4", "A5"):
            assert block[:, slices[g]].sum() == 0

    def test_empty_window_rejected(self, trace):
        fx = FeatureExtractor(trace)
        with pytest.raises(ValueError):
            fx.window(0, 10, 10)

    def test_alert_feeds_history_group(self, trace):
        fx = FeatureExtractor(trace)
        event = trace.events[0]
        fx.add_alert(alert(customer=event.customer_id, end=event.end,
                           detect=event.onset, attackers=tuple(event.attackers)))
        block = fx.window(event.customer_id, event.end, event.end + 10)
        slices = group_slices()
        assert block[:, slices["A4"]].sum() > 0


class TestFeatureScaler:
    def test_transform_standardizes(self, rng):
        blocks = [np.abs(rng.lognormal(3, 2, size=(50, 10))) for _ in range(3)]
        scaler = FeatureScaler().fit(blocks)
        out = scaler.transform(blocks[0])
        stacked = np.concatenate([scaler.transform(b) for b in blocks])
        assert stacked.mean(axis=0) == pytest.approx(np.zeros(10), abs=1e-9)
        assert stacked.std(axis=0) == pytest.approx(np.ones(10), abs=1e-9)

    def test_constant_columns_pass_through(self, rng):
        block = np.zeros((20, 3))
        scaler = FeatureScaler().fit([block])
        assert np.isfinite(scaler.transform(block)).all()

    def test_unfit_transform_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((2, 2)))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit([])

    def test_state_dict_roundtrip(self, rng):
        scaler = FeatureScaler().fit([rng.lognormal(size=(10, 4))])
        clone = FeatureScaler()
        clone.load_state_dict(scaler.state_dict())
        x = rng.lognormal(size=(5, 4))
        assert clone.transform(x) == pytest.approx(scaler.transform(x))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_transform_monotone_per_column(self, seed):
        """log1p+standardize preserves per-column ordering."""
        rng = np.random.default_rng(seed)
        block = rng.uniform(0, 100, size=(30, 4))
        scaler = FeatureScaler().fit([block])
        out = scaler.transform(block)
        for col in range(4):
            order_in = np.argsort(block[:, col], kind="stable")
            order_out = np.argsort(out[:, col], kind="stable")
            assert (order_in == order_out).all()
