"""Tests for the shared scrubbing-report summarizer."""

import numpy as np
import pytest

from repro.scrub import DiversionWindow, ScrubbingCenter, summarize_report


class TestSummarizeReport:
    @pytest.fixture(scope="class")
    def full_coverage(self, trace):
        windows = [
            DiversionWindow(c.customer_id, 0, trace.horizon)
            for c in trace.world.customers
        ]
        report = ScrubbingCenter(trace).account(windows)
        return trace, report

    def test_full_coverage_ideal_metrics(self, full_coverage):
        trace, report = full_coverage
        summary = summarize_report(trace, report)
        assert summary.effectiveness.median == pytest.approx(1.0)
        assert summary.detection_rate == 1.0
        assert summary.n_events == len(trace.events)

    def test_no_coverage_metrics(self, trace):
        report = ScrubbingCenter(trace).account([])
        summary = summarize_report(trace, report, missed_delay=42)
        assert summary.effectiveness.median == 0.0
        assert summary.detection_rate == 0.0
        assert summary.delay.median == 42.0
        assert summary.overhead.median == 0.0

    def test_minute_range_filters_events(self, full_coverage):
        trace, report = full_coverage
        half = trace.horizon // 2
        first = summarize_report(trace, report, (0, half))
        second = summarize_report(trace, report, (half, trace.horizon))
        assert first.n_events + second.n_events == len(trace.events)

    def test_empty_range(self, full_coverage):
        trace, report = full_coverage
        summary = summarize_report(trace, report, (0, 1))
        possible = [e for e in trace.events if e.onset == 0]
        assert summary.n_events == len(possible)
        assert summary.detection_rate in (0.0, 1.0)

    def test_percentile_conventions(self, full_coverage):
        trace, report = full_coverage
        summary = summarize_report(trace, report)
        assert summary.effectiveness.low_pct == 10
        assert summary.overhead.low_pct == 25
        assert summary.overhead.high_pct == 75
