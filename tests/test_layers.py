"""Unit tests for nn layers: Dense, LSTM, pooling, containers."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    AvgPool1D,
    Dense,
    Dropout,
    MaxPool1D,
    Sequential,
    Tensor,
    gradcheck,
)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    @pytest.mark.parametrize("act", [None, "sigmoid", "tanh", "relu", "softplus"])
    def test_activations_run(self, act, rng):
        layer = Dense(4, 2, activation=act, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert np.isfinite(out.numpy()).all()

    def test_unknown_activation_raises(self, rng):
        layer = Dense(4, 2, activation="gelu", rng=rng)
        with pytest.raises(ValueError, match="unknown activation"):
            layer(Tensor(rng.normal(size=(3, 4))))

    def test_gradients_flow_to_params(self, rng):
        layer = Dense(4, 2, activation="tanh", rng=rng)
        layer(Tensor(rng.normal(size=(3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gradcheck_small(self, rng):
        layer = Dense(3, 2, activation="sigmoid", rng=rng)
        x = Tensor(rng.normal(size=(2, 3)))
        gradcheck(
            lambda w, b: (x @ w + b).sigmoid().sum(),
            [layer.weight, layer.bias],
        )

    def test_softplus_output_non_negative(self, rng):
        layer = Dense(4, 1, activation="softplus", rng=rng)
        out = layer(Tensor(rng.normal(size=(50, 4))))
        assert (out.numpy() >= 0).all()


class TestLSTM:
    def test_output_shapes(self, rng):
        lstm = LSTM(5, 7, rng=rng)
        out, (h, c) = lstm(Tensor(rng.normal(size=(3, 11, 5))))
        assert out.shape == (3, 11, 7)
        assert h.shape == (3, 7) and c.shape == (3, 7)

    def test_final_state_matches_last_output(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        out, (h, _c) = lstm(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.numpy()[:, -1, :] == pytest.approx(h.numpy())

    def test_wrong_feature_count_raises(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        with pytest.raises(ValueError, match="input features"):
            lstm(Tensor(rng.normal(size=(2, 5, 3))))

    def test_state_threading_equals_full_sequence(self, rng):
        """Running two halves with threaded state == one full pass."""
        lstm = LSTM(3, 4, rng=rng)
        x = rng.normal(size=(2, 8, 3))
        full, _ = lstm(Tensor(x))
        first, state = lstm(Tensor(x[:, :5, :]))
        second, _ = lstm(Tensor(x[:, 5:, :]), state=state)
        joined = np.concatenate([first.numpy(), second.numpy()], axis=1)
        assert joined == pytest.approx(full.numpy())

    def test_forget_bias_initialized_to_one(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        bias = lstm.bias.numpy()
        assert np.all(bias[4:8] == 1.0)
        assert np.all(bias[:4] == 0.0)

    def test_gradcheck_tiny_lstm(self, rng):
        lstm = LSTM(2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 2)) * 0.5)

        def loss(w_x, w_h, b):
            out, _ = lstm(x)
            return (out**2).sum()

        gradcheck(loss, [lstm.w_x, lstm.w_h, lstm.bias], atol=1e-3)

    def test_hidden_state_bounded(self, rng):
        lstm = LSTM(3, 5, rng=rng)
        out, _ = lstm(Tensor(rng.normal(size=(2, 50, 3)) * 10))
        assert (np.abs(out.numpy()) <= 1.0).all()  # o * tanh(c) in [-1, 1]


class TestPooling:
    def test_avg_pool_exact_windows(self):
        x = Tensor(np.arange(12.0).reshape(1, 6, 2))
        out = AvgPool1D(3)(x)
        assert out.shape == (1, 2, 2)
        assert out.numpy()[0, 0] == pytest.approx([2.0, 3.0])

    def test_avg_pool_partial_trailing_window(self):
        x = Tensor(np.arange(10.0).reshape(1, 5, 2))
        out = AvgPool1D(2)(x)
        assert out.shape == (1, 3, 2)
        # Last window has a single element.
        assert out.numpy()[0, 2] == pytest.approx([8.0, 9.0])

    def test_window_one_is_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 3)))
        assert AvgPool1D(1)(x) is x
        assert MaxPool1D(1)(x) is x

    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0], [5.0], [2.0], [4.0]]]))
        out = MaxPool1D(2)(x)
        assert out.numpy().ravel() == pytest.approx([5.0, 4.0])

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            AvgPool1D(0)
        with pytest.raises(ValueError):
            MaxPool1D(-1)

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 5, 2)), requires_grad=True)
        gradcheck(lambda x: (AvgPool1D(2)(x) ** 2).sum(), [x])


class TestContainersAndState:
    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Dense(4, 3, rng=rng), Dense(3, 2, rng=rng))
        out = model(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 2)
        assert len(model) == 2

    def test_parameters_collects_nested(self, rng):
        model = Sequential(Dense(4, 3, rng=rng), Dense(3, 2, rng=rng))
        assert len(model.parameters()) == 4

    def test_state_dict_roundtrip(self, rng):
        a = Dense(4, 3, rng=np.random.default_rng(1))
        b = Dense(4, 3, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.numpy(), b.weight.numpy())
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.numpy(), b.weight.numpy())

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        a = Dense(4, 3, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_load_state_dict_missing_key_raises(self, rng):
        a = Dense(4, 3, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_zero_grad_clears_all(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        layer.zero_grad()
        assert layer.weight.grad is None and layer.bias.grad is None

    def test_dropout_identity_in_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.training = False
        x = Tensor(rng.normal(size=(4, 4)))
        assert drop(x) is x

    def test_dropout_scales_in_train(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).numpy()
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
