"""Tests for bootstrap CIs and scenario config files."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import BootstrapCI, bootstrap_ci, bootstrap_median_ci
from repro.synth import (
    ScenarioConfig,
    load_scenario_file,
    save_scenario_file,
    scenario_from_json,
    scenario_to_json,
)


class TestBootstrap:
    def test_ci_contains_true_median_for_tight_sample(self, rng):
        values = rng.normal(loc=5.0, scale=0.01, size=200)
        ci = bootstrap_median_ci(values, seed=1)
        assert ci.contains(5.0)
        assert ci.width < 0.01

    def test_wider_ci_for_smaller_samples(self, rng):
        big = bootstrap_median_ci(rng.normal(size=400), seed=2)
        small = bootstrap_median_ci(rng.normal(size=8), seed=2)
        assert small.width > big.width

    def test_estimate_is_plain_statistic(self, rng):
        values = rng.uniform(size=50)
        ci = bootstrap_ci(values, lambda v: float(v.mean()), seed=3)
        assert ci.estimate == pytest.approx(values.mean())

    def test_deterministic_given_seed(self, rng):
        values = rng.normal(size=30)
        a = bootstrap_median_ci(values, seed=7)
        b = bootstrap_median_ci(values, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([])

    def test_bad_confidence_rejected(self, rng):
        with pytest.raises(ValueError):
            bootstrap_median_ci(rng.normal(size=5), confidence=1.0)

    def test_bad_resamples_rejected(self, rng):
        with pytest.raises(ValueError):
            bootstrap_median_ci(rng.normal(size=5), n_resamples=0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_ci_brackets_estimate(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.exponential(size=40)
        ci = bootstrap_median_ci(values, seed=seed)
        assert ci.low <= ci.estimate <= ci.high


class TestScenarioConfigIo:
    def test_roundtrip_defaults(self):
        config = ScenarioConfig()
        assert scenario_from_json(scenario_to_json(config)) == config

    def test_roundtrip_with_tuples_and_knobs(self):
        config = ScenarioConfig(
            total_days=5, prep_days=1, sampling_rates=(1, 100), ramp_rate=1.5,
            fresh_sources=True,
        )
        restored = scenario_from_json(scenario_to_json(config))
        assert restored == config
        assert isinstance(restored.sampling_rates, tuple)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            scenario_from_json('{"bogus_field": 1}')

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            scenario_from_json("[1, 2]")

    def test_file_roundtrip(self, tmp_path):
        config = ScenarioConfig(total_days=3, prep_days=0.5, n_customers=4)
        path = save_scenario_file(config, tmp_path / "scenario.json")
        assert load_scenario_file(path) == config

    def test_cli_accepts_config_file(self, tmp_path, capsys):
        from repro.cli import main

        config = ScenarioConfig(
            total_days=8, minutes_per_day=100, prep_days=1.5,
            n_customers=5, n_botnets=2, botnet_size=60, seed=9,
        )
        path = save_scenario_file(config, tmp_path / "s.json")
        rc = main(["census", "--config", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "800 minutes" in out  # 8 days x 100 min


class TestMatrixClassDominance:
    """Property: every auxiliary class's byte columns are dominated by 'all'."""

    @settings(max_examples=10, deadline=None)
    @given(start=st.integers(0, 1800))
    def test_class_blocks_dominated_by_all(self, start, trace):
        from repro.netflow import (
            SOURCE_CLASS_ALL,
            SOURCE_CLASS_BLOCKLIST,
            SOURCE_CLASS_PREV_ATTACKER,
            SOURCE_CLASS_SPOOFED,
        )

        end = min(trace.horizon, start + 40)
        if end <= start:
            return
        cid = trace.world.customers[start % len(trace.world.customers)].customer_id
        all_block = trace.matrix.feature_block(cid, start, end, SOURCE_CLASS_ALL)
        # Columns 5.. are additive byte/packet counters; unique/mean/max
        # (cols 0-4) are not additive across classes.
        for cls in (
            SOURCE_CLASS_BLOCKLIST, SOURCE_CLASS_PREV_ATTACKER, SOURCE_CLASS_SPOOFED,
        ):
            sub = trace.matrix.feature_block(cid, start, end, cls)
            assert (sub[:, 5:] <= all_block[:, 5:] + 1e-6).all()
