"""Shared fixtures: expensive artefacts are built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipelineConfig, TimescaleSpec, TrainConfig, XatuModelConfig
from repro.synth import ScenarioConfig, TraceGenerator


def small_scenario(seed: int = 3) -> ScenarioConfig:
    return ScenarioConfig(
        total_days=16,
        minutes_per_day=120,
        prep_days=2,
        n_customers=8,
        n_botnets=4,
        botnet_size=100,
        campaigns_per_botnet=2,
        seed=seed,
    )


def small_model_config() -> XatuModelConfig:
    return XatuModelConfig(
        hidden_size=12,
        dense_size=8,
        detect_window=10,
        timescales=(
            TimescaleSpec("short", 1, 60),
            TimescaleSpec("medium", 5, 36),
            TimescaleSpec("long", 20, 12),
        ),
    )


@pytest.fixture(scope="session")
def trace():
    """One shared synthetic trace for read-only tests."""
    return TraceGenerator(small_scenario()).materialize()


@pytest.fixture(scope="session")
def pipeline_result():
    """One shared end-to-end pipeline run (the expensive integration artefact)."""
    from repro.core import XatuPipeline

    config = PipelineConfig(
        scenario=small_scenario(),
        model=small_model_config(),
        train=TrainConfig(epochs=5, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.25,
    )
    pipeline = XatuPipeline(config)
    return pipeline, pipeline.run()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
