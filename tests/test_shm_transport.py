"""The shared-memory shard transport (repro.serve.shm).

The process backend's guarantee is that its transport is *invisible*:
``transport="shm"`` (the default) and ``transport="pipe"`` must produce
byte-identical alert streams and checkpoints, because the payload bytes
crossing the boundary are the same — only the copy count changes.  These
tests pin that, plus the ring mechanics the guarantee rests on:

* **ring level** — write/view round trips, wrap-around reuse, automatic
  growth under oversized payloads (segment renamed, reader re-attaches),
  idempotent close;
* **worker level** — a process shard over shm steps :class:`FlowBatch`
  payloads identically to an inline shard, through ring wraps and
  growths; a host without usable shared memory falls back to the pipe
  transport with a warning rather than failing;
* **engine level** — shm vs pipe vs inline equivalence, shard-count
  invariance, and kill-and-restore crash equivalence all running over
  the shared-memory transport.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.netflow import DatagramCodec, FlowBatch, FlowRecord
from repro.serve import ServeConfig, ServeEngine, latest_checkpoint
from repro.serve import shard as shard_mod
from repro.serve.shard import ShardWorker
from repro.serve.shm import MIN_RING_BYTES, ShmReader, ShmRing

from tests.test_serve import (
    ADDRESS_OF,
    _drive,
    _minutes_of_flows,
    _xatu_factory,
)


def _detector_factory(threshold: float = 0.5):
    """Zero-arg factory for ShardWorker: one shard owning every customer."""
    factory = _xatu_factory(threshold)
    return lambda: factory(ADDRESS_OF)


def _flow_batch(n: int, seed: int = 0) -> FlowBatch:
    rng = np.random.default_rng(seed)
    return FlowBatch.from_records(
        [
            FlowRecord(
                timestamp=0,
                src_addr=int(rng.integers(1, 2**31)),
                dst_addr=50_000 + int(rng.integers(0, len(ADDRESS_OF))),
                src_port=int(rng.integers(1024, 65535)),
                dst_port=443,
                protocol=6,
                packets=int(rng.integers(1, 40)),
                bytes_=int(rng.integers(200, 40_000)),
            )
            for _ in range(n)
        ]
    )


# ----------------------------------------------------------------------
# ring level
# ----------------------------------------------------------------------
class TestShmRing:
    def test_write_view_round_trip(self):
        ring = ShmRing(MIN_RING_BYTES)
        reader = ShmReader()
        try:
            payload = bytes(range(256)) * 4
            name, offset, length = ring.write(payload)
            assert bytes(reader.view(name, offset, length)) == payload
        finally:
            reader.close()
            ring.close()

    def test_sequential_writes_then_wrap(self):
        ring = ShmRing(MIN_RING_BYTES)
        try:
            a = ring.write(b"a" * 1600)
            b = ring.write(b"b" * 1600)
            assert b[1] == a[1] + 1600  # sequential within capacity
            c = ring.write(b"c" * 1600)  # does not fit: wraps to offset 0
            assert c[1] == 0
            assert a[0] == b[0] == c[0] == ring.name
        finally:
            ring.close()

    def test_growth_renames_segment_and_preserves_payload(self):
        ring = ShmRing(MIN_RING_BYTES)
        reader = ShmReader()
        try:
            old_name = ring.name
            payload = b"x" * (MIN_RING_BYTES * 3)
            name, offset, length = ring.write(payload)
            assert name != old_name
            assert ring.capacity >= len(payload)
            assert bytes(reader.view(name, offset, length)) == payload
        finally:
            reader.close()
            ring.close()

    def test_reader_reattaches_across_growth(self):
        ring = ShmRing(MIN_RING_BYTES)
        reader = ShmReader()
        try:
            small = ring.write(b"s" * 64)
            assert bytes(reader.view(*small)) == b"s" * 64
            big = ring.write(b"B" * (MIN_RING_BYTES * 2))
            assert big[0] != small[0]
            assert bytes(reader.view(*big)) == b"B" * (MIN_RING_BYTES * 2)
        finally:
            reader.close()
            ring.close()

    def test_close_is_idempotent(self):
        ring = ShmRing(MIN_RING_BYTES)
        ring.close()
        ring.close()
        reader = ShmReader()
        reader.close()
        reader.close()


# ----------------------------------------------------------------------
# worker level
# ----------------------------------------------------------------------
class TestShardWorkerTransport:
    def _alerts(self, worker: ShardWorker, batches) -> list:
        out = []
        for minute, batch in enumerate(batches):
            out.append(worker.step(minute, batch))
        return out

    def test_process_shm_matches_inline(self):
        batches = [_flow_batch(30, seed=i) for i in range(4)]
        inline = ShardWorker(0, _detector_factory(), backend="inline")
        shm = ShardWorker(
            0, _detector_factory(), backend="process", transport="shm"
        )
        try:
            assert shm.transport == "shm"
            assert self._alerts(shm, batches) == self._alerts(inline, batches)
            assert pickle.dumps(shm.state_dict()) == pickle.dumps(inline.state_dict())
        finally:
            shm.close()
            inline.close()

    def test_ring_growth_mid_stream(self):
        # a tiny ring forces wrap AND growth while the worker is live
        big = _flow_batch(400, seed=1)  # > MIN_RING_BYTES of payload
        small = _flow_batch(5, seed=2)
        inline = ShardWorker(1, _detector_factory(), backend="inline")
        shm = ShardWorker(
            1, _detector_factory(), backend="process",
            transport="shm", shm_ring_bytes=1,
        )
        try:
            batches = [small, big, small, big]
            assert self._alerts(shm, batches) == self._alerts(inline, batches)
        finally:
            shm.close()
            inline.close()

    def test_record_lists_still_travel_the_pipe(self):
        records = list(_flow_batch(10, seed=3))
        inline = ShardWorker(0, _detector_factory(), backend="inline")
        shm = ShardWorker(0, _detector_factory(), backend="process", transport="shm")
        try:
            assert shm.step(0, records) == inline.step(0, records)
        finally:
            shm.close()
            inline.close()

    def test_unavailable_shm_falls_back_to_pipe(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(shard_mod, "ShmRing", refuse)
        with pytest.warns(RuntimeWarning, match="falling back to pipe"):
            worker = ShardWorker(
                0, _detector_factory(), backend="process", transport="shm"
            )
        try:
            assert worker.transport == "pipe"
            # the payload path still works — it just pickles batches
            worker.step(0, _flow_batch(8, seed=4))
        finally:
            worker.close()

    def test_non_process_backends_ignore_transport(self):
        worker = ShardWorker(0, _detector_factory(), backend="inline", transport="shm")
        try:
            assert worker.transport == "pipe"  # no ring allocated
        finally:
            worker.close()


# ----------------------------------------------------------------------
# engine level
# ----------------------------------------------------------------------
def _engine(shards, backend="process", transport="shm", checkpoint_dir=None):
    return ServeEngine(
        _xatu_factory(0.9),
        ADDRESS_OF,
        ServeConfig(
            shards=shards,
            backend=backend,
            transport=transport,
            checkpoint_dir=checkpoint_dir,
        ),
    )


MINUTES = 10
RESTART_AT = 4


class TestEngineTransportEquivalence:
    def test_config_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ServeConfig(transport="carrier-pigeon").validate()
        with pytest.raises(ValueError, match="shm_ring_bytes"):
            ServeConfig(shm_ring_bytes=0).validate()

    def test_shm_pipe_and_inline_streams_identical(self):
        minutes = _minutes_of_flows(6)
        streams = {}
        for key, (backend, transport) in {
            "inline": ("inline", "pipe"),
            "pipe": ("process", "pipe"),
            "shm": ("process", "shm"),
        }.items():
            with _engine(2, backend=backend, transport=transport) as engine:
                streams[key] = _drive(engine, DatagramCodec(engine_id=1), minutes)
        assert streams["shm"] == streams["pipe"] == streams["inline"]

    def test_shard_count_invariance_over_shm(self):
        minutes = _minutes_of_flows(8)
        streams = {}
        for shards in (1, 3):
            with _engine(shards) as engine:
                streams[shards] = _drive(
                    engine, DatagramCodec(engine_id=1), minutes, cdet_at={2}
                )
        assert streams[1] == streams[3]
        assert streams[1], "the workload should produce alerts"

    def test_kill_and_restore_over_shm_is_byte_identical(self, tmp_path):
        minutes = _minutes_of_flows(MINUTES)

        with _engine(2, checkpoint_dir=tmp_path / "base") as engine:
            baseline = _drive(engine, DatagramCodec(engine_id=1), minutes)
            engine.checkpoint()

        codec = DatagramCodec(engine_id=1)
        ckpt_dir = tmp_path / "crash"
        engine = _engine(2, checkpoint_dir=ckpt_dir)
        restarted = _drive(engine, codec, minutes[: RESTART_AT + 1])
        engine.checkpoint()
        engine.close()

        engine = _engine(2, checkpoint_dir=ckpt_dir)
        assert engine.restore() == RESTART_AT
        restarted += _drive(
            engine, codec, minutes[RESTART_AT + 1 :], start=RESTART_AT + 1
        )
        engine.checkpoint()
        engine.close()

        assert restarted == baseline
        base_path = latest_checkpoint(tmp_path / "base")
        crash_path = latest_checkpoint(ckpt_dir)
        for name in ("MANIFEST.json", "engine.pkl", "shard-00.pkl", "shard-01.pkl"):
            assert (base_path / name).read_bytes() == (
                crash_path / name
            ).read_bytes(), name

    def test_fallback_engine_stream_matches_shm(self, monkeypatch):
        """A host without usable shm degrades, not diverges.

        Every shard of a ``transport="shm"`` engine warns and falls back
        to the pipe when the ring can't be allocated — and the merged
        alert stream stays byte-identical to the healthy-shm engine's.
        """
        minutes = _minutes_of_flows(6)
        with _engine(2, backend="process", transport="shm") as engine:
            baseline = _drive(engine, DatagramCodec(engine_id=1), minutes)

        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(shard_mod, "ShmRing", refuse)
        with pytest.warns(RuntimeWarning, match="falling back to pipe"):
            engine = _engine(2, backend="process", transport="shm")
        try:
            assert all(w.transport == "pipe" for w in engine.shards)
            fallback = _drive(engine, DatagramCodec(engine_id=1), minutes)
        finally:
            engine.close()
        assert fallback == baseline

    def test_close_releases_rings(self):
        engine = _engine(2)
        rings = [w._ring for w in engine.shards if w._ring is not None]
        assert rings, "process+shm shards should hold rings"
        engine.close()
        assert all(w._ring is None for w in engine.shards)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for ring in rings:
                ring.close()  # already closed by the engine: must be a no-op
