"""xatulint: per-rule positive/negative fixtures, baseline round-trip,
inline suppressions, and the meta-test that the repo itself lints clean.

Every rule gets at least one snippet that MUST fire and one that MUST
stay silent — the negatives are as load-bearing as the positives, since
an over-eager rule erodes trust in the gate.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULE_IDS,
    Baseline,
    BaselineEntry,
    Severity,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(source: str, rel_path: str = "src/repro/fixture.py") -> list:
    return analyze_source(textwrap.dedent(source), rel_path)


def rule_ids(findings) -> list[str]:
    return [f.rule for f in findings]


def fires(rule_id: str, source: str, rel_path: str = "src/repro/fixture.py"):
    found = rule_ids(lint(source, rel_path))
    assert rule_id in found, f"{rule_id} should fire; got {found}"


def silent(rule_id: str, source: str, rel_path: str = "src/repro/fixture.py"):
    found = rule_ids(lint(source, rel_path))
    assert rule_id not in found, f"{rule_id} should stay silent; got {found}"


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_rules_registered(self):
        assert [r.id for r in all_rules()] == sorted(ALL_RULE_IDS)

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.name and rule.description and rule.fix_hint
            assert rule.severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)

    def test_get_rule(self):
        assert get_rule("XL001").name == "tape-mutation"


# ----------------------------------------------------------------------
# XL001 — tape mutation
# ----------------------------------------------------------------------
class TestTapeMutation:
    def test_subscript_write_fires(self):
        fires("XL001", "t.data[...] = new_values\n")

    def test_subscript_augassign_fires(self):
        fires("XL001", "t.data[0] += 1\n")

    def test_attribute_augassign_fires(self):
        fires("XL001", "p.data -= lr * grad\n")

    def test_ufunc_out_fires(self):
        fires("XL001", "np.add(a, b, out=t.data)\n")

    def test_rebind_is_fine(self):
        # Rebinding the attribute makes a fresh array; the old tape
        # node's buffer is untouched.
        silent("XL001", "t.data = np.zeros(3)\n")

    def test_plain_array_write_is_fine(self):
        silent("XL001", "x[0] = 1\nbuf += delta\n")


# ----------------------------------------------------------------------
# XL002 — inference outside no_grad
# ----------------------------------------------------------------------
class TestInferenceOutsideNoGrad:
    def test_predict_without_guard_fires(self):
        fires("XL002", """
            def predict_scores(model, x):
                t = Tensor(x)
                return model.forward(t)
        """)

    def test_with_no_grad_is_fine(self):
        silent("XL002", """
            def predict_scores(model, x):
                with no_grad():
                    t = Tensor(x)
                    return model.forward(t)
        """)

    def test_decorator_is_fine(self):
        silent("XL002", """
            @no_grad
            def infer_batch(model, x):
                return model.forward(Tensor(x))
        """)

    def test_non_inference_name_is_fine(self):
        silent("XL002", """
            def train_step(model, x):
                return model.forward(Tensor(x))
        """)

    def test_pure_numpy_inference_is_fine(self):
        silent("XL002", """
            def infer_fast(w, x):
                return np.tanh(x @ w)
        """)


# ----------------------------------------------------------------------
# XL003 — global switch leaks
# ----------------------------------------------------------------------
class TestGlobalSwitchLeak:
    def test_bare_toggle_fires(self):
        fires("XL003", """
            def run(path):
                set_enabled(True)
                do_work()
                set_enabled(False)
        """)

    def test_try_finally_is_fine(self):
        silent("XL003", """
            def run(path):
                set_enabled(True)
                try:
                    do_work()
                finally:
                    set_enabled(False)
        """)

    def test_toggle_inside_if_before_try_finally_is_fine(self):
        # The toggle sits under `if`, so the restoring try/finally is a
        # sibling of the *if*, not of the call statement — the rule must
        # climb enclosing statements (the cli.py --telemetry shape).
        silent("XL003", """
            def run(path):
                if path:
                    set_enabled(True)
                try:
                    do_work()
                finally:
                    if path:
                        set_enabled(False)
        """)

    def test_context_manager_plumbing_is_fine(self):
        silent("XL003", """
            class telemetry:
                def __enter__(self):
                    set_enabled(True)
                    return self

                def __exit__(self, *exc):
                    set_enabled(False)
        """)

    def test_defining_module_is_exempt(self):
        silent("XL003", "def set_enabled(flag):\n    set_enabled(flag)\n",
               rel_path="src/repro/obs/registry.py")

    def test_grad_flag_poke_fires(self):
        fires("XL003", "_MODE.grad_enabled = False\n")


# ----------------------------------------------------------------------
# XL004 — unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandomness:
    def test_global_numpy_draw_fires(self):
        fires("XL004", "noise = np.random.normal(0.0, 1.0, size=8)\n")

    def test_stdlib_draw_fires(self):
        fires("XL004", "jitter = random.random()\n")

    def test_seeded_generator_is_fine(self):
        silent("XL004", """
            rng = np.random.default_rng(7)
            noise = rng.normal(0.0, 1.0, size=8)
        """)

    def test_seeded_stdlib_rng_is_fine(self):
        silent("XL004", "r = random.Random(3)\njitter = r.random()\n")


# ----------------------------------------------------------------------
# XL005 — wall clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_in_core_fires(self):
        fires("XL005", "stamp = time.time()\n",
              rel_path="src/repro/core/fixture.py")

    def test_perf_counter_is_fine(self):
        silent("XL005", "t0 = time.perf_counter()\n",
               rel_path="src/repro/serve/fixture.py")

    def test_out_of_scope_path_is_fine(self):
        # Host-metadata stamping in eval/bench/obs is legitimate.
        silent("XL005", "stamp = time.time()\n",
               rel_path="src/repro/eval/fixture.py")


# ----------------------------------------------------------------------
# XL006 — unlocked shared state
# ----------------------------------------------------------------------
_THREADED_CLASS = """
    class Worker:
        def __init__(self):
            self._thread = threading.Thread(target=loop)

        def poke(self):
            {write}
"""


class TestUnlockedSharedState:
    def test_unguarded_write_fires(self):
        fires("XL006", _THREADED_CLASS.format(write="self.state = 1"),
              rel_path="src/repro/serve/fixture.py")

    def test_lock_guard_is_fine(self):
        silent("XL006", _THREADED_CLASS.format(
            write="with self._lock:\n            self.state = 1"),
            rel_path="src/repro/serve/fixture.py")

    def test_owner_comment_on_write_is_fine(self):
        silent("XL006", _THREADED_CLASS.format(
            write="self.state = 1  # owner: engine thread"),
            rel_path="src/repro/serve/fixture.py")

    def test_owner_comment_at_introduction_is_fine(self):
        # Ownership declared once, where the attribute is introduced,
        # covers every later write to it.
        silent("XL006", """
            class Worker:
                def __init__(self):
                    self.state = 0  # owner: engine thread
                    self._thread = threading.Thread(target=loop)

                def poke(self):
                    self.state = 1
        """, rel_path="src/repro/serve/fixture.py")

    def test_threadless_class_is_fine(self):
        silent("XL006", """
            class Plain:
                def poke(self):
                    self.state = 1
        """, rel_path="src/repro/serve/fixture.py")

    def test_outside_serve_is_fine(self):
        silent("XL006", _THREADED_CLASS.format(write="self.state = 1"),
               rel_path="src/repro/nn/fixture.py")

    def test_init_only_helper_is_construction(self):
        # A private helper called only from __init__ runs before the
        # thread exists — its writes are construction, not sharing.
        silent("XL006", """
            class Worker:
                def __init__(self):
                    self._setup()
                    self._thread = threading.Thread(target=loop)

                def _setup(self):
                    self.state = 0
        """, rel_path="src/repro/serve/fixture.py")

    def test_transitive_init_helper_is_construction(self):
        # Init helper calling another init helper still counts.
        silent("XL006", """
            class Worker:
                def __init__(self):
                    self._setup()
                    self._thread = threading.Thread(target=loop)

                def _setup(self):
                    self._alloc()

                def _alloc(self):
                    self.buffers = []
        """, rel_path="src/repro/serve/fixture.py")

    def test_helper_also_called_post_init_still_fires(self):
        # The same helper reached from a post-init method loses the
        # exemption — it can now race the engine thread.
        fires("XL006", """
            class Worker:
                def __init__(self):
                    self._setup()
                    self._thread = threading.Thread(target=loop)

                def _setup(self):
                    self.state = 0

                def reset(self):
                    self._setup()
        """, rel_path="src/repro/serve/fixture.py")

    def test_helper_escaping_as_thread_target_still_fires(self):
        # A bound reference handed to the thread runs concurrently no
        # matter who calls it by name.
        fires("XL006", """
            class Worker:
                def __init__(self):
                    self._loop_setup()
                    self._thread = threading.Thread(target=self._loop_setup)

                def _loop_setup(self):
                    self.state = 0
        """, rel_path="src/repro/serve/fixture.py")


# ----------------------------------------------------------------------
# XL007 — deprecated detector API
# ----------------------------------------------------------------------
class TestDeprecatedDetectorApi:
    def test_two_arg_observe_minute_fires(self):
        fires("XL007", "alerts = det.observe_minute(minute, flows)\n")

    def test_constructor_run_fires(self):
        fires("XL007", "alerts = NetScoutDetector().run(trace)\n")

    def test_protocol_forms_are_fine(self):
        silent("XL007", """
            alerts = det.observe_minute(flows)
            alerts = online.step(minute, flows)
            alerts = NetScoutDetector().detect(trace)
        """)

    def test_unrelated_run_is_fine(self):
        silent("XL007", "result = Pipeline().run(trace)\n")


# ----------------------------------------------------------------------
# XL008 — mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_list_default_fires(self):
        fires("XL008", "def f(items=[]):\n    return items\n")

    def test_dict_kwonly_default_fires(self):
        fires("XL008", "def f(*, cache={}):\n    return cache\n")

    def test_none_default_is_fine(self):
        silent("XL008", "def f(items=None, key=()):\n    return items\n")


# ----------------------------------------------------------------------
# XL009 — bare except
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_bare_except_fires(self):
        fires("XL009", """
            try:
                work()
            except:
                pass
        """)

    def test_typed_except_is_fine(self):
        silent("XL009", """
            try:
                work()
            except Exception:
                pass
        """)


# ----------------------------------------------------------------------
# XL010 — alert-order hazards
# ----------------------------------------------------------------------
class TestAlertOrderHazard:
    def test_raw_values_iteration_fires(self):
        fires("XL010", """
            def merge_alerts(by_shard):
                out = []
                for alerts in by_shard.values():
                    out.extend(alerts)
                return out
        """)

    def test_comprehension_fires(self):
        fires("XL010", """
            def poll_alerts(pending):
                return [a for a in pending.values()]
        """)

    def test_sorted_iteration_is_fine(self):
        silent("XL010", """
            def merge_alerts(by_shard):
                out = []
                for shard, alerts in sorted(by_shard.items()):
                    out.extend(alerts)
                return out
        """)

    def test_non_alert_function_is_fine(self):
        silent("XL010", """
            def summarize(counts):
                return [v for v in counts.values()]
        """)


# ----------------------------------------------------------------------
# XL011 — materialized traces in library code
# ----------------------------------------------------------------------
class TestMaterializedTrace:
    def test_generate_shim_fires(self):
        fires("XL011", """
            def build(gen):
                return gen.generate()
        """)

    def test_direct_trace_construction_fires(self):
        fires("XL011", """
            def assemble(matrix, events):
                return Trace(matrix, events=events)
        """)

    def test_streaming_is_fine(self):
        silent("XL011", """
            def drive(gen):
                for sl in gen.iter_minutes():
                    consume(sl.batch)
        """)

    def test_explicit_materialize_is_fine(self):
        silent("XL011", """
            def snapshot(gen):
                return gen.materialize()
        """)

    def test_bare_generate_name_is_fine(self):
        # Only the attribute-call shim is deprecated; a local function
        # that happens to be called `generate` is someone else's business.
        silent("XL011", """
            def run():
                return generate()
        """)

    def test_tests_are_out_of_scope(self):
        silent(
            "XL011",
            """
            def test_round_trip(gen):
                return gen.generate()
            """,
            rel_path="tests/test_fixture.py",
        )


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_syntax_error_becomes_xl000(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["XL000"]
        assert findings[0].severity == Severity.ERROR

    def test_inline_suppression_specific(self):
        silent("XL009", """
            try:
                work()
            except:  # xatulint: ignore[XL009]
                pass
        """)

    def test_inline_suppression_wrong_rule_still_fires(self):
        fires("XL009", """
            try:
                work()
            except:  # xatulint: ignore[XL001]
                pass
        """)

    def test_inline_suppression_blanket(self):
        silent("XL008", "def f(items=[]):  # xatulint: ignore\n    return items\n")

    def test_findings_sorted_deterministically(self):
        source = """
            def f(items=[]):
                try:
                    work()
                except:
                    pass
        """
        first = lint(source)
        second = lint(source)
        assert [f.render() for f in first] == [f.render() for f in second]
        keys = [(f.path, f.line, f.col, f.rule) for f in first]
        assert keys == sorted(keys)

    def test_fingerprint_survives_line_shift(self):
        base = "def f(items=[]):\n    return items\n"
        shifted = "import os\n\n\n" + base
        (a,) = lint(base)
        (b,) = lint(shifted)
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint("def f(items=[]):\n    return items\n")
        baseline = Baseline.from_findings(findings)
        path = baseline.save(tmp_path / "baseline.json")
        loaded = Baseline.load(path)
        assert len(loaded) == len(findings)
        new, suppressed = loaded.partition(findings)
        assert new == [] and len(suppressed) == len(findings)

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_stale_entries_reported(self):
        stale = BaselineEntry("XL008", "src/gone.py", "def f(x=[]):", "why")
        baseline = Baseline([stale])
        assert baseline.unused_entries([]) == [stale]

    def test_write_baseline_keeps_reasons(self, tmp_path):
        findings = lint("def f(items=[]):\n    return items\n")
        first = Baseline.from_findings(findings)
        entry = first.entries[0]
        documented = Baseline(
            [BaselineEntry(entry.rule, entry.path, entry.line_text, "documented")]
        )
        rewritten = Baseline.from_findings(findings, previous=documented)
        assert rewritten.entries[0].reason == "documented"


# ----------------------------------------------------------------------
# the repo itself must lint clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_lints_clean_against_baseline(self):
        findings = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        new, _ = baseline.partition(findings)
        assert new == [], "new lint findings:\n" + "\n".join(
            f.render() for f in new
        )
        # A shallow run can only judge shallow entries stale; deep (XF)
        # entries are covered by test_flow_analysis.py's repo-clean test.
        shallow_ids = set(ALL_RULE_IDS)
        stale = [
            e
            for e in baseline.unused_entries(findings)
            if e.rule in shallow_ids
        ]
        assert stale == [], "stale baseline entries: " + ", ".join(
            f"{e.path}:{e.rule}" for e in stale
        )

    def test_cli_lint_strict_exits_clean(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--strict"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_cli_lint_subtree_ignores_out_of_scope_baseline(
        self, monkeypatch, capsys
    ):
        # Baseline entries live in nn/core files; linting serve/ alone
        # must not report them as stale.
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--strict", "src/repro/serve"]) == 0
        assert "stale" not in capsys.readouterr().out

    def test_every_baseline_entry_has_a_reason(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline) > 0
        for entry in baseline.entries:
            assert entry.reason and "TODO" not in entry.reason, (
                f"{entry.path}:{entry.rule} has no written reason"
            )
