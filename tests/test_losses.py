"""Unit tests for BCE and the SAFE survival loss."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Tensor,
    binary_cross_entropy,
    gradcheck,
    hazard_to_survival,
    safe_survival_loss,
)


class TestBCE:
    def test_perfect_predictions_near_zero_loss(self):
        probs = Tensor(np.array([0.999999, 0.000001]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() < 1e-4

    def test_uniform_prediction_is_log2(self):
        probs = Tensor(np.full(10, 0.5))
        loss = binary_cross_entropy(probs, np.zeros(10))
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_matches_manual_formula(self, rng):
        p = rng.uniform(0.05, 0.95, size=8)
        y = rng.integers(0, 2, size=8).astype(float)
        manual = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        assert binary_cross_entropy(Tensor(p), y).item() == pytest.approx(manual)

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=6), requires_grad=True)
        y = rng.integers(0, 2, size=6).astype(float)
        gradcheck(lambda t: binary_cross_entropy(t.sigmoid(), y), [logits])

    def test_extreme_probs_clipped_finite(self):
        probs = Tensor(np.array([0.0, 1.0]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestHazardToSurvival:
    def test_matches_exp_cumsum(self, rng):
        h = np.abs(rng.normal(size=(3, 5)))
        s = hazard_to_survival(Tensor(h)).numpy()
        assert s == pytest.approx(np.exp(-np.cumsum(h, axis=-1)))

    def test_monotone_non_increasing(self, rng):
        h = np.abs(rng.normal(size=(2, 10)))
        s = hazard_to_survival(Tensor(h)).numpy()
        assert (np.diff(s, axis=-1) <= 1e-12).all()

    def test_zero_hazard_survival_one(self):
        s = hazard_to_survival(Tensor(np.zeros((1, 4)))).numpy()
        assert s == pytest.approx(np.ones((1, 4)))


class TestSafeSurvivalLoss:
    def test_matches_closed_form(self):
        """loss = -c*log(1-S) - (1-c)*log(S) with S = exp(-sum lambda)."""
        h = np.array([[0.1, 0.2, 0.3], [0.05, 0.05, 0.05]])
        c = np.array([1.0, 0.0])
        t = np.array([2, 2])
        s = np.exp(-h.sum(axis=1))
        expected = np.mean([-np.log(1 - s[0]), -np.log(s[1])])
        loss = safe_survival_loss(Tensor(h), c, t)
        assert loss.item() == pytest.approx(expected)

    def test_label_time_truncates_hazard_sum(self):
        h = np.array([[1.0, 1.0, 100.0]])  # huge hazard after the label
        loss_at_1 = safe_survival_loss(Tensor(h), np.array([0.0]), np.array([1]))
        assert loss_at_1.item() == pytest.approx(2.0)  # sum of first two

    def test_attack_series_prefers_high_hazard(self):
        low = safe_survival_loss(
            Tensor(np.full((1, 5), 0.01)), np.array([1.0]), np.array([4])
        )
        high = safe_survival_loss(
            Tensor(np.full((1, 5), 2.0)), np.array([1.0]), np.array([4])
        )
        assert high.item() < low.item()

    def test_non_attack_series_prefers_low_hazard(self):
        low = safe_survival_loss(
            Tensor(np.full((1, 5), 0.01)), np.array([0.0]), np.array([4])
        )
        high = safe_survival_loss(
            Tensor(np.full((1, 5), 2.0)), np.array([0.0]), np.array([4])
        )
        assert low.item() < high.item()

    def test_bad_label_time_raises(self):
        h = Tensor(np.ones((2, 3)))
        with pytest.raises(ValueError, match="out of range"):
            safe_survival_loss(h, np.array([1.0, 0.0]), np.array([0, 3]))

    def test_mismatched_batch_raises(self):
        h = Tensor(np.ones((2, 3)))
        with pytest.raises(ValueError, match="batch"):
            safe_survival_loss(h, np.array([1.0]), np.array([0, 1]))

    def test_gradcheck_through_softplus(self, rng):
        raw = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        c = np.array([1.0, 0.0, 1.0])
        t = np.array([3, 3, 1])
        gradcheck(lambda r: safe_survival_loss(r.softplus(), c, t), [raw])

    def test_zero_hazard_attack_loss_finite(self):
        """Attack with S=1 exactly hits the epsilon clip, not -inf."""
        loss = safe_survival_loss(
            Tensor(np.zeros((1, 3))), np.array([1.0]), np.array([2])
        )
        assert np.isfinite(loss.item())


@settings(max_examples=30, deadline=None)
@given(
    steps=st.integers(2, 8),
    label=st.integers(0, 7),
    is_attack=st.booleans(),
    seed=st.integers(0, 999),
)
def test_loss_gradient_sign_property(steps, label, is_attack, seed):
    """Gradient pushes hazards up for attacks, down for non-attacks.

    For steps <= label the SAFE loss gradient w.r.t. lambda is negative for
    attack series (increase hazard -> lower loss) and positive for
    non-attack series.
    """
    label = min(label, steps - 1)
    rng = np.random.default_rng(seed)
    h = Tensor(rng.uniform(0.05, 0.5, size=(1, steps)), requires_grad=True)
    loss = safe_survival_loss(h, np.array([float(is_attack)]), np.array([label]))
    loss.backward()
    grads = h.grad[0, : label + 1]
    if is_attack:
        assert (grads < 0).all()
    else:
        assert (grads > 0).all()
    # Steps after the label never receive gradient.
    assert (h.grad[0, label + 1 :] == 0).all()
