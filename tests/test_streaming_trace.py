"""Differential property suite for the TraceSource streaming protocol.

The streaming redesign's contract is byte-identity: folding the minute
slices a :class:`TraceGenerator` streams must reproduce exactly the
:class:`Trace` the one-shot materialization builds — same matrix cells,
same ground-truth events, same counters — and every producer of the
protocol (generator, replayer, materialized adapter) must agree with its
legacy lane.  The suite also covers the scale machinery that rides on
the protocol: bounded-memory lazy worlds, the analytic customer router,
and idle-watch eviction in the online detector.
"""

from __future__ import annotations

import pickle
import tracemalloc

import numpy as np
import pytest

from repro.core.online import OnlineConfig, OnlineXatu
from repro.detect import NetScoutDetector
from repro.eval.streaming import stream_trace
from repro.netflow import FlowBatch, FlowRecord, TrafficMatrix
from repro.serve import ContiguousCustomerRouter
from repro.synth import (
    MaterializedTraceSource,
    ScenarioConfig,
    TraceGenerator,
    TraceReplayer,
    TraceSource,
    as_trace_source,
)


def streaming_scenario(seed: int = 11, **overrides) -> ScenarioConfig:
    defaults = dict(
        total_days=4,
        minutes_per_day=60,
        prep_days=1,
        n_customers=5,
        n_botnets=2,
        botnet_size=60,
        campaigns_per_botnet=1,
        seed=seed,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def lazy_scenario(n_customers: int, seed: int = 5) -> ScenarioConfig:
    return ScenarioConfig(
        total_days=1.0,
        minutes_per_day=60,
        prep_days=0.25,
        n_customers=n_customers,
        n_botnets=1,
        botnet_size=50,
        campaigns_per_botnet=1,
        seed=seed,
        lazy_world=True,
        benign_flow_budget=400,
    )


def assert_matrix_equal(a: TrafficMatrix, b: TrafficMatrix) -> None:
    sa, sb = a.state_dict(), b.state_dict()
    assert sa["max_minute"] == sb["max_minute"]
    assert sa["customers"] == sb["customers"]
    assert len(sa["cells"]) == len(sb["cells"])
    for cell_a, cell_b in zip(sa["cells"], sb["cells"]):
        assert cell_a[:3] == cell_b[:3]
        state_a, state_b = cell_a[3], cell_b[3]
        for key in (
            "flow_count", "total_bytes", "total_packets",
            "max_bytes", "max_packets", "sources",
        ):
            assert state_a[key] == state_b[key], (cell_a[:3], key)
        assert np.array_equal(state_a["vector"], state_b["vector"]), cell_a[:3]


def assert_events_equal(a, b) -> None:
    assert len(a) == len(b)
    for ev_a, ev_b in zip(a, b):
        for attr in (
            "event_id", "customer_id", "customer_address", "attack_type",
            "onset", "end", "peak_bytes", "campaign_id", "botnet_id",
        ):
            assert getattr(ev_a, attr) == getattr(ev_b, attr)
        assert np.array_equal(ev_a.anomalous_bytes, ev_b.anomalous_bytes)
        assert ev_a.attackers == ev_b.attackers


def batch_fields_equal(a: FlowBatch, b: FlowBatch) -> bool:
    if len(a.array) != len(b.array):
        return False
    return all(np.array_equal(a.array[f], b.array[f]) for f in a.array.dtype.names)


# ----------------------------------------------------------------------
# streaming vs materialized byte-identity
# ----------------------------------------------------------------------
class TestStreamMaterializeEquivalence:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_scalar_fold_matches_materialized(self, seed):
        """Folding streamed slices record-by-record (the scalar add_flow
        lane) reproduces the materialized matrix bit for bit — this pins
        both the stream's content and the scalar/columnar fold identity."""
        trace = TraceGenerator(streaming_scenario(seed)).materialize()

        folded = TrafficMatrix()
        streamed_flows = 0
        total_flows = 0
        for sl in TraceGenerator(streaming_scenario(seed)).iter_minutes():
            total_flows += sl.total_flows
            streamed_flows += sl.sampled_flows
            masks = {cls: np.asarray(m, dtype=bool) for cls, m in sl.class_masks.items()}
            for i, record in enumerate(sl.records):
                classes = [cls for cls, mask in masks.items() if mask[i]]
                folded.add_flow(int(sl.customer_ids[i]), record, classes)

        assert_matrix_equal(folded, trace.matrix)
        assert streamed_flows == trace.sampled_flows
        assert total_flows == trace.total_flows

    def test_event_stream_matches_trace(self):
        config = streaming_scenario(13)
        trace = TraceGenerator(config).materialize()

        started, ended = [], []
        for sl in TraceGenerator(config).iter_minutes():
            for event in sl.events_started:
                assert event.onset == sl.minute
                started.append(event)
            for event in sl.events_ended:
                assert event.end == sl.minute
                ended.append(event)

        started.sort(key=lambda e: e.event_id)
        assert_events_equal(started, sorted(trace.events, key=lambda e: e.event_id))
        # Events whose end falls inside the horizon are revealed finalized.
        expected_ended = [e for e in trace.events if e.end < config.horizon_minutes]
        assert_events_equal(
            sorted(ended, key=lambda e: e.event_id),
            sorted(expected_ended, key=lambda e: e.event_id),
        )

    def test_windowed_stream_matches_full(self):
        config = streaming_scenario(17)
        full = list(TraceGenerator(config).iter_minutes())
        a, b = 50, 90
        window = list(TraceGenerator(config).iter_minutes(a, b))
        assert [sl.minute for sl in window] == list(range(a, b))
        for sl, ref in zip(window, full[a:b]):
            assert np.array_equal(sl.customer_ids, ref.customer_ids)
            assert batch_fields_equal(sl.batch, ref.batch)

    def test_minutes_are_contiguous_and_aligned(self):
        config = streaming_scenario(19)
        minutes = []
        for sl in TraceGenerator(config).iter_minutes():
            minutes.append(sl.minute)
            assert sl.customer_ids.dtype == np.int64
            assert len(sl.customer_ids) == sl.sampled_flows == len(sl.batch.array)
            assert sl.total_flows >= sl.sampled_flows
            if sl.sampled_flows:
                assert np.all(sl.batch.array["timestamp"] == sl.minute)
            for cls, mask in sl.class_masks.items():
                mask = np.asarray(mask)
                assert mask.dtype == bool and mask.shape == (sl.sampled_flows,), cls
        assert minutes == list(range(config.horizon_minutes))

    def test_slice_views_are_consistent(self):
        for sl in TraceGenerator(streaming_scenario(23)).iter_minutes(0, 30):
            if not sl.sampled_flows:
                continue
            rebuilt = FlowBatch.from_records(sl.records)
            assert batch_fields_equal(rebuilt, sl.batch)

    def test_generator_streams_are_single_shot(self):
        generator = TraceGenerator(streaming_scenario(3))
        list(generator.iter_minutes(0, 2))
        with pytest.raises(RuntimeError, match="single-shot"):
            generator.iter_minutes()

    def test_out_of_range_window_rejected(self):
        generator = TraceGenerator(streaming_scenario(3))
        with pytest.raises(ValueError):
            generator.iter_minutes(-1)
        with pytest.raises(ValueError):
            generator.iter_minutes(0, generator.horizon + 1)

    def test_generate_shim_warns_and_matches(self):
        config = streaming_scenario(31)
        reference = TraceGenerator(config).materialize()
        with pytest.warns(DeprecationWarning, match="materialize"):
            legacy = TraceGenerator(config).generate()
        assert_matrix_equal(legacy.matrix, reference.matrix)
        assert_events_equal(legacy.events, reference.events)
        assert legacy.total_flows == reference.total_flows
        assert legacy.sampled_flows == reference.sampled_flows


# ----------------------------------------------------------------------
# the TraceSource protocol across producers
# ----------------------------------------------------------------------
class TestTraceSourceProtocol:
    def test_producers_satisfy_protocol(self, trace):
        assert isinstance(TraceGenerator(streaming_scenario()), TraceSource)
        assert isinstance(TraceReplayer(trace), TraceSource)
        assert isinstance(MaterializedTraceSource(trace), TraceSource)

    def test_as_trace_source_passthrough(self, trace):
        generator = TraceGenerator(streaming_scenario())
        assert as_trace_source(generator) is generator
        source = as_trace_source(trace)
        assert isinstance(source, MaterializedTraceSource)
        assert source.horizon == trace.horizon

    def test_as_trace_source_rejects_garbage(self):
        with pytest.raises(TypeError, match="cannot stream"):
            as_trace_source(42)

    def test_replayer_slices_match_replay(self, trace):
        replay = dict(TraceReplayer(trace, seed=0).replay(40, 70))
        for sl in TraceReplayer(trace, seed=0).iter_minutes(40, 70):
            assert sl.records == replay[sl.minute]
            assert len(sl.customer_ids) == len(sl.records)

    def test_events_so_far_is_causal(self):
        config = streaming_scenario(37)
        generator = TraceGenerator(config)
        assert generator.events_so_far() == []
        seen = 0
        for sl in generator.iter_minutes():
            revealed = generator.events_so_far()
            assert len(revealed) >= seen  # monotone reveal
            seen = len(revealed)
            assert all(e.onset <= sl.minute for e in revealed)
        reference = TraceGenerator(config).materialize()
        assert seen == len(reference.events)

    def test_materialized_source_cursor(self, trace):
        source = MaterializedTraceSource(trace)
        assert source.events_so_far() == []
        for _ in source.iter_minutes(0, trace.horizon // 2):
            pass
        mid = {e.event_id for e in source.events_so_far()}
        assert mid == {e.event_id for e in trace.events if e.onset < trace.horizon // 2}

    def test_stream_trace_accepts_trace_and_source(self, trace):
        """`stream_trace` must produce the identical alert stream whether
        handed the Trace, the adapter, or the replayer directly."""
        detector = NetScoutDetector()
        via_trace = stream_trace(detector, trace, 0, 120)
        detector.reset()
        via_adapter = stream_trace(detector, MaterializedTraceSource(trace), 0, 120)
        detector.reset()
        via_replayer = stream_trace(detector, TraceReplayer(trace, seed=0), 0, 120)
        assert via_trace == via_adapter == via_replayer


# ----------------------------------------------------------------------
# bounded memory: lazy worlds stream without O(n_customers) state
# ----------------------------------------------------------------------
class TestBoundedMemory:
    @staticmethod
    def _peak_bytes(n_customers: int) -> int:
        tracemalloc.start()
        try:
            generator = TraceGenerator(lazy_scenario(n_customers))
            flows = sum(sl.sampled_flows for sl in generator.iter_minutes(0, 8))
            assert flows > 0
            assert len(generator.world.customers) == n_customers
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    def test_streaming_memory_is_flat_in_universe_size(self):
        """A 10× larger lazy universe must not cost 10× the memory: peak
        allocation streaming 100k customers stays within 1.5× of 10k
        (plus a small fixed slack for allocator noise)."""
        peak_small = self._peak_bytes(10_000)
        peak_large = self._peak_bytes(100_000)
        assert peak_large <= peak_small * 1.5 + 4 * 2**20, (
            f"peak grew with universe size: {peak_small} -> {peak_large} bytes"
        )


# ----------------------------------------------------------------------
# the analytic customer router
# ----------------------------------------------------------------------
class TestContiguousRouter:
    def make(self, n=10, base=1000, stride=256):
        return ContiguousCustomerRouter(base, n, stride)

    def test_for_world_matches_analytic_lookup(self):
        generator = TraceGenerator(lazy_scenario(1_000))
        router = ContiguousCustomerRouter.for_world(generator.world)
        assert len(router) == 1_000
        for cid in (0, 1, 499, 999):
            addr = generator.world.customers[cid].address
            assert router.get(addr) == cid
            assert generator.world.customer_by_address(addr).customer_id == cid

    def test_route_batch_validates_exact_addresses(self):
        router = self.make()
        dst = np.array([
            1000,            # cid 0
            1000 + 256 * 9,  # cid 9 (last)
            1000 + 256 * 10, # past the universe
            999,             # below base
            1001,            # misaligned inside block 0
            -5,
        ])
        np.testing.assert_array_equal(
            router.route_batch(dst), np.array([0, 9, -1, -1, -1, -1])
        )

    def test_dict_shaped_reads(self):
        router = self.make()
        assert router.get(1000) == 0
        assert router.get(1000 + 256 * 3) == 3
        assert router.get(1001) is None
        assert router.get(1001, -1) == -1
        assert 1000 in router and 1001 not in router
        assert len(router) == 10

    def test_shard_views_partition_the_universe(self):
        router = self.make()
        views = [router.shard_view(i, 3) for i in range(3)]
        assert [len(v) for v in views] == [4, 3, 3]
        addrs = np.array([1000 + 256 * i for i in range(10)])
        owners = np.stack([v.route_batch(addrs) for v in views])
        # Each address routed by exactly one view, to the right cid.
        assert np.all((owners >= 0).sum(axis=0) == 1)
        np.testing.assert_array_equal(owners.max(axis=0), np.arange(10))
        for i, view in enumerate(views):
            assert view.get(1000 + 256 * i) == i  # cid % 3 == i for i < 3

    def test_resharding_a_view_rejected(self):
        view = self.make().shard_view(0, 2)
        with pytest.raises(ValueError, match="re-shard"):
            view.shard_view(0, 2)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ContiguousCustomerRouter(0, 0)
        with pytest.raises(ValueError):
            ContiguousCustomerRouter(0, 1, stride=0)
        with pytest.raises(ValueError):
            ContiguousCustomerRouter(0, 1, shard_index=2, shards=2)

    def test_router_is_picklable(self):
        """Process-backend shards ship their partition by pickle."""
        view = self.make().shard_view(1, 3)
        clone = pickle.loads(pickle.dumps(view))
        addrs = np.array([1000 + 256 * i for i in range(10)])
        np.testing.assert_array_equal(clone.route_batch(addrs), view.route_batch(addrs))

    def test_lazy_watch_marker(self):
        assert self.make().lazy_watch is True


# ----------------------------------------------------------------------
# lazy watch + idle eviction in the online detector
# ----------------------------------------------------------------------
def _tiny_online(customer_of, watch_idle_minutes=None):
    from repro.bench.scale import _tiny_artifacts
    from repro.netflow.routing import RouteTable

    model, scaler = _tiny_artifacts()
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), 64500)
    return OnlineXatu(
        model,
        scaler,
        customer_of=customer_of,
        route_table=route_table,
        config=OnlineConfig(
            threshold=1.0 - 1e-9,  # untrained model: never alert in these tests
            evict_margin_minutes=10,
            watch_idle_minutes=watch_idle_minutes,
        ),
    )


def _flow_to(addr: int, minute: int) -> FlowRecord:
    return FlowRecord(
        timestamp=minute,
        src_addr=42,
        dst_addr=addr,
        src_port=5353,
        dst_port=53,
        protocol=17,
        packets=2,
        bytes_=300,
    )


class TestWatchIdleEviction:
    def test_watch_idle_minutes_validated(self):
        with pytest.raises(ValueError, match="watch_idle_minutes"):
            OnlineConfig(watch_idle_minutes=0).validate()
        OnlineConfig(watch_idle_minutes=None).validate()

    def test_router_mode_starts_with_empty_watch(self):
        router = ContiguousCustomerRouter(1000, 50)
        detector = _tiny_online(router)
        assert detector._watched == set()
        detector.step(1, [_flow_to(1000 + 256 * 7, 1)])
        assert detector._watched == {7}

    def test_idle_customers_are_evicted_and_rewatched(self):
        router = ContiguousCustomerRouter(1000, 50)
        detector = _tiny_online(router, watch_idle_minutes=3)
        detector.step(1, [_flow_to(1000, 1)])
        assert detector._watched == {0}
        for minute in (2, 3, 4):
            detector.step(minute, [])
            assert detector._watched == {0}  # within the idle window
        detector.step(5, [])
        assert detector._watched == set()  # last seen 1 < 5 - 3
        detector.step(6, [_flow_to(1000, 6)])
        assert detector._watched == {0}  # traffic re-watches

    def test_active_customer_survives_while_idle_one_is_evicted(self):
        router = ContiguousCustomerRouter(1000, 50)
        detector = _tiny_online(router, watch_idle_minutes=3)
        detector.step(1, [_flow_to(1000, 1), _flow_to(1000 + 256, 1)])
        assert detector._watched == {0, 1}
        for minute in range(2, 8):
            detector.step(minute, [_flow_to(1000 + 256, minute)])
        assert detector._watched == {1}

    def test_batch_lane_routes_through_router(self):
        router = ContiguousCustomerRouter(1000, 50)
        detector = _tiny_online(router)
        batch = FlowBatch.from_records(
            [_flow_to(1000 + 256 * 2, 1), _flow_to(1000 + 7, 1)]  # second unrouted
        )
        detector.step(1, batch)
        assert detector._watched == {2}

    def test_state_dict_rejects_router_mode(self):
        detector = _tiny_online(ContiguousCustomerRouter(1000, 50))
        with pytest.raises(TypeError, match="analytic routers"):
            detector.state_dict()

    def test_dict_mode_state_round_trips_idle_tracking(self):
        customer_of = {1000: 0, 1256: 1}
        detector = _tiny_online(customer_of, watch_idle_minutes=5)
        detector.step(1, [_flow_to(1000, 1)])
        state = detector.state_dict()
        assert state["config"]["watch_idle_minutes"] == 5
        assert state["last_seen"] == [(0, 1)]

        restored = _tiny_online(customer_of, watch_idle_minutes=5)
        restored.load_state_dict(state)
        assert restored._last_seen == {0: 1}
        # Eviction continues from the restored clock.
        for minute in range(2, 8):
            restored.step(minute, [])
        assert 0 not in restored._watched
