"""Direct unit tests for XatuDetector's online sliding evaluation."""

import numpy as np
import pytest

from repro.core import DetectorConfig, XatuDetector, XatuModel
from repro.signals import FeatureExtractor, FeatureScaler
from tests.conftest import small_model_config


def identity_scaler():
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    return scaler


def make_model(bias: float):
    model = XatuModel(small_model_config())
    model.combine.bias.data[...] = bias
    return model


@pytest.fixture(scope="module")
def cold_run(trace):
    """A run with the cold model: survival ~1, no alerts expected."""
    detector = XatuDetector(
        trace, FeatureExtractor(trace), make_model(-6.0), identity_scaler(),
        DetectorConfig(threshold=0.3),
    )
    lo = trace.horizon - 240
    return trace, detector, detector.run((lo, trace.horizon)), lo


class TestColdDetector:
    def test_no_alerts_when_survival_high(self, cold_run):
        _trace, _det, output, _lo = cold_run
        assert output.alerts == []
        assert output.windows == []

    def test_hazard_series_cover_range(self, cold_run):
        trace, _det, output, lo = cold_run
        for cid, series in output.hazard_series.items():
            assert len(series) == trace.horizon - lo
            assert (series >= 0).all()

    def test_all_customers_scored(self, cold_run):
        trace, _det, output, _lo = cold_run
        assert set(output.hazard_series) == {
            c.customer_id for c in trace.world.customers
        }


class TestHotDetector:
    @pytest.fixture(scope="class")
    def hot_run(self, trace):
        detector = XatuDetector(
            trace, FeatureExtractor(trace), make_model(2.0), identity_scaler(),
            DetectorConfig(threshold=0.3, max_fp_diversion=5, autoregressive=False),
        )
        lo = trace.horizon - 120
        return trace, detector, detector.run((lo, trace.horizon)), lo

    def test_alerts_fire(self, hot_run):
        _trace, _det, output, _lo = hot_run
        assert output.alerts

    def test_alert_survival_below_threshold(self, hot_run):
        _trace, _det, output, _lo = hot_run
        for alert in output.alerts:
            assert alert.survival < 0.3

    def test_no_alert_during_active_diversion(self, hot_run):
        _trace, _det, output, _lo = hot_run
        by_customer: dict[int, list] = {}
        for window in output.windows:
            by_customer.setdefault(window.customer_id, []).append(window)
        for windows in by_customer.values():
            windows.sort(key=lambda w: w.start)
            for a, b in zip(windows, windows[1:]):
                assert b.start >= a.end

    def test_unmatched_diversions_capped(self, hot_run):
        trace, _det, output, _lo = hot_run
        for window, alert in zip(output.windows, output.alerts):
            if alert.event_id < 0:
                assert window.end - window.start <= 5

    def test_windows_align_with_alerts(self, hot_run):
        _trace, _det, output, _lo = hot_run
        assert len(output.windows) == len(output.alerts)
        for window, alert in zip(output.windows, output.alerts):
            assert window.start == alert.minute
            assert window.customer_id == alert.customer_id


class TestAutoregressiveFeedback:
    def test_alerts_feed_history_store(self, trace):
        extractor = FeatureExtractor(trace)
        detector = XatuDetector(
            trace, extractor, make_model(2.0), identity_scaler(),
            DetectorConfig(threshold=0.3, autoregressive=True),
        )
        lo = trace.horizon - 120
        output = detector.run((lo, trace.horizon))
        matched = [a for a in output.alerts if a.event_id >= 0]
        if not matched:
            pytest.skip("no matched alerts in this slice")
        # The history store saw at least the matched alerts.
        total_after = sum(
            extractor.history.alerts_before(c.customer_id, trace.horizon)
            for c in trace.world.customers
        )
        assert total_after >= len({a.event_id for a in matched})

    def test_non_autoregressive_leaves_stores_untouched(self, trace):
        extractor = FeatureExtractor(trace)
        detector = XatuDetector(
            trace, extractor, make_model(2.0), identity_scaler(),
            DetectorConfig(threshold=0.3, autoregressive=False),
        )
        lo = trace.horizon - 120
        detector.run((lo, trace.horizon))
        total = sum(
            extractor.history.alerts_before(c.customer_id, trace.horizon)
            for c in trace.world.customers
        )
        assert total == 0
