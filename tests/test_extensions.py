"""Tests for the extension features: heterogeneous sampling, §8 evasion
scenarios, and the entropy detector."""

import dataclasses

import numpy as np
import pytest

from repro.detect import EntropyDetector, distribution_entropy
from repro.netflow import N_VOLUMETRIC
from repro.synth import ScenarioConfig, TraceGenerator
from tests.conftest import small_scenario


def mini_scenario(**overrides):
    base = ScenarioConfig(
        total_days=8, minutes_per_day=100, prep_days=1.5,
        n_customers=5, n_botnets=2, botnet_size=60, seed=9,
    )
    return dataclasses.replace(base, **overrides)


class TestHeterogeneousSampling:
    def test_rates_assigned_round_robin(self):
        gen = TraceGenerator(mini_scenario(sampling_rates=(1, 10)))
        rates = [gen._sampler_for(c.customer_id).rate for c in gen.world.customers]
        assert rates == [1, 10, 1, 10, 1]

    def test_sampled_flow_count_drops_with_rate(self):
        dense = TraceGenerator(mini_scenario()).materialize()
        sparse = TraceGenerator(mini_scenario(sampling_rates=(100,))).materialize()
        assert sparse.sampled_flows < dense.sampled_flows * 0.6

    def test_compensated_volume_roughly_preserved(self):
        """Sampling-compensated byte totals stay in the right ballpark."""
        dense = TraceGenerator(mini_scenario()).materialize()
        sparse = TraceGenerator(mini_scenario(sampling_rates=(10,))).materialize()
        d = sum(dense.matrix.bytes_series(c.customer_id, 0, dense.horizon).sum()
                for c in dense.world.customers)
        s = sum(sparse.matrix.bytes_series(c.customer_id, 0, sparse.horizon).sum()
                for c in sparse.world.customers)
        assert s == pytest.approx(d, rel=0.35)

    def test_single_rate_fallback(self):
        gen = TraceGenerator(mini_scenario(sampling_rate=5))
        assert all(s.rate == 5 for s in gen._samplers)


@pytest.mark.slow
class TestEvasionScenarios:
    def test_fresh_sources_defeat_a2_tagging(self):
        from repro.netflow import SOURCE_CLASS_PREV_ATTACKER

        trace = TraceGenerator(mini_scenario(fresh_sources=True)).materialize()
        assert trace.events
        # No attacker ever repeats, so the A2 class stays (nearly) empty —
        # only benign sources matching old signatures can land in it.
        events = sorted(trace.events, key=lambda e: e.onset)
        seen: dict[int, set] = {}
        for event in events:
            prior = seen.get(event.customer_id, set())
            overlap = len(event.attackers & prior) / max(1, len(event.attackers))
            assert overlap < 0.2
            seen.setdefault(event.customer_id, set()).update(event.attackers)

    def test_fresh_sources_not_blocklisted(self):
        gen = TraceGenerator(mini_scenario(fresh_sources=True))
        trace = gen.materialize()
        listed = gen.blocklisted_addrs
        for event in trace.events:
            frac = sum(1 for a in event.attackers if a in listed) / max(1, len(event.attackers))
            assert frac < 0.2

    def test_skip_preparation_mutes_prep_traffic(self):
        noisy = TraceGenerator(mini_scenario()).materialize()
        quiet = TraceGenerator(mini_scenario(skip_preparation=True)).materialize()
        # Same schedule (same seed); the quiet trace carries fewer flows.
        assert quiet.total_flows < noisy.total_flows

    def test_evasion_trace_still_trains(self):
        """§8: evasion degrades Xatu but nothing crashes end to end."""
        from repro.core import PipelineConfig, TrainConfig, XatuPipeline
        from tests.conftest import small_model_config

        scenario = dataclasses.replace(
            small_scenario(seed=5), fresh_sources=True, skip_preparation=True
        )
        config = PipelineConfig(
            scenario=scenario,
            model=small_model_config(),
            train=TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3),
            overhead_bound=0.5,
        )
        result = XatuPipeline(config).run()
        assert 0.0 <= result.effectiveness.median <= 1.0


class TestEntropyDetector:
    def test_distribution_entropy_bounds(self, rng):
        row = np.zeros(N_VOLUMETRIC)
        assert distribution_entropy(row) == 0.0
        row[5] = 100.0  # all mass on one bucket
        assert distribution_entropy(row) == 0.0
        row[7] = 100.0  # two equal buckets -> 1 bit
        assert distribution_entropy(row) == pytest.approx(1.0)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            distribution_entropy(np.zeros(10))

    def test_entropy_shifts_under_attack(self, trace):
        detector = EntropyDetector()
        event = max(trace.events, key=lambda e: e.anomalous_bytes.sum())
        series = detector.entropy_series(trace, event.customer_id)
        quiet = series[max(0, event.onset - 60):event.onset - 5]
        during = series[event.onset:event.end]
        if len(during) < 2 or len(quiet) < 10:
            pytest.skip("event too short for entropy comparison")
        # A flood concentrates traffic structure: entropy moves away from
        # the quiet profile in one direction or the other.
        assert abs(np.median(during) - np.median(quiet)) > 0.05

    def test_detector_produces_well_formed_alerts(self, trace):
        alerts = EntropyDetector().detect(trace)
        for a in alerts:
            assert 0 <= a.detect_minute < a.end_minute <= trace.horizon

    def test_detector_catches_some_attacks(self, trace):
        alerts = EntropyDetector().detect(trace)
        matched = {a.event_id for a in alerts if a.event_id >= 0}
        assert matched, "entropy deviation should catch at least one flood"
