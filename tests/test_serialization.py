"""Direct tests for the weights (de)serialization helpers."""

import numpy as np
import pytest

from repro.nn import Dense, LSTM, Sequential, load_module_into, load_state, save_module


class TestSaveLoad:
    def test_npz_suffix_added(self, tmp_path, rng):
        layer = Dense(3, 2, rng=rng)
        path = save_module(layer, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_sidecar(self, tmp_path, rng):
        layer = Dense(3, 2, rng=rng)
        save_module(layer, tmp_path / "w", metadata={"attack_type": "udp", "thr": 0.4})
        state, meta = load_state(tmp_path / "w")
        assert meta == {"attack_type": "udp", "thr": 0.4}
        assert set(state) == {"weight", "bias"}

    def test_no_metadata_is_empty_dict(self, tmp_path, rng):
        layer = Dense(3, 2, rng=rng)
        save_module(layer, tmp_path / "w")
        _state, meta = load_state(tmp_path / "w")
        assert meta == {}

    def test_load_module_into_restores_weights(self, tmp_path):
        a = Dense(4, 3, rng=np.random.default_rng(1))
        b = Dense(4, 3, rng=np.random.default_rng(2))
        save_module(a, tmp_path / "w", metadata={"v": 1})
        meta = load_module_into(b, tmp_path / "w")
        assert meta == {"v": 1}
        assert b.weight.numpy() == pytest.approx(a.weight.numpy())

    def test_nested_module_roundtrip(self, tmp_path):
        model = Sequential(
            Dense(4, 3, rng=np.random.default_rng(3)),
            Dense(3, 2, rng=np.random.default_rng(4)),
        )
        save_module(model, tmp_path / "seq")
        clone = Sequential(
            Dense(4, 3, rng=np.random.default_rng(5)),
            Dense(3, 2, rng=np.random.default_rng(6)),
        )
        load_module_into(clone, tmp_path / "seq")
        x = np.random.default_rng(0).normal(size=(2, 4))
        from repro.nn import Tensor

        assert clone(Tensor(x)).numpy() == pytest.approx(model(Tensor(x)).numpy())

    def test_lstm_roundtrip(self, tmp_path, rng):
        lstm = LSTM(3, 4, rng=np.random.default_rng(7))
        save_module(lstm, tmp_path / "lstm")
        clone = LSTM(3, 4, rng=np.random.default_rng(8))
        load_module_into(clone, tmp_path / "lstm")
        assert clone.w_h.numpy() == pytest.approx(lstm.w_h.numpy())

    def test_creates_parent_directories(self, tmp_path, rng):
        layer = Dense(2, 2, rng=rng)
        path = save_module(layer, tmp_path / "a" / "b" / "weights")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path / "nope")
