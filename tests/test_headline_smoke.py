"""Smoke test for the HeadlineExperiment harness at minimal scale.

The benches exercise it thoroughly; this keeps a fast invariant check in
the unit suite so regressions surface without running benchmarks.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, TimescaleSpec, TrainConfig, XatuModelConfig
from repro.eval import HeadlineExperiment
from repro.synth import ScenarioConfig

pytestmark = pytest.mark.slow  # full multi-system sweep; skip with -m "not slow"


@pytest.fixture(scope="module")
def experiment():
    config = PipelineConfig(
        scenario=ScenarioConfig(
            total_days=12, minutes_per_day=100, prep_days=1.5,
            n_customers=6, n_botnets=3, botnet_size=80,
            campaigns_per_botnet=2, seed=3,
        ),
        model=XatuModelConfig(
            hidden_size=8, dense_size=6, detect_window=8,
            timescales=(
                TimescaleSpec("short", 1, 40),
                TimescaleSpec("long", 10, 12),
            ),
        ),
        train=TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.25,
    )
    exp = HeadlineExperiment(config)
    exp.prepare()
    return exp


class TestHeadlineSmoke:
    def test_sweep_produces_all_systems(self, experiment):
        rows = experiment.sweep([0.25], include_entropy=True)
        systems = {m.system for m in rows}
        assert systems == {"netscout", "fastnetmon", "entropy", "rf", "xatu"}

    def test_metric_ranges(self, experiment):
        for m in experiment.sweep([0.25]):
            assert 0.0 <= m.effectiveness_p10 <= m.effectiveness_median <= m.effectiveness_p90 <= 1.0
            assert m.overhead_p25 <= m.overhead_median <= m.overhead_p75 + 1e-12
            assert m.n_events >= 0

    def test_cdet_metrics_bound_independent(self, experiment):
        rows = experiment.sweep([0.1, 0.5])
        ns = [m for m in rows if m.system == "netscout"]
        assert ns[0].effectiveness_median == ns[1].effectiveness_median
        assert ns[0].delay_median == ns[1].delay_median

    def test_roc_points_valid(self, experiment):
        points = experiment.roc()
        assert {p.system for p in points} == {"xatu", "rf"}
        for p in points:
            assert 0.0 <= p.auc <= 1.0
            assert p.fpr[0] == 0.0 and p.fpr[-1] == 1.0
            assert (np.diff(p.fpr) >= 0).all()

    def test_per_type_returns_present_types(self, experiment):
        per_type = experiment.per_type(overhead_bound=0.25, min_events=1)
        lo, hi = experiment.eval_range
        present = {
            e.attack_type.value
            for e in experiment.trace.events
            if lo <= e.onset < hi
        }
        assert set(per_type) <= present

    def test_prepare_idempotent(self, experiment):
        model_before = experiment.model
        experiment.prepare()
        assert experiment.model is model_before
