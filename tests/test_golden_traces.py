"""Golden-trace fixture tests: round trip, diff detection, versioning.

The committed fixture under ``tests/fixtures/golden/`` is the regression
anchor: ``python -m repro.cli golden check`` must pass against it on every
change to the nn/survival stack.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.testing import (
    GOLDEN_FORMAT_VERSION,
    GoldenFormatError,
    GoldenSpec,
    check_golden,
    compute_golden_arrays,
    record_golden,
)

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "golden"


@pytest.fixture(scope="module")
def golden_arrays():
    """Compute the golden recipe once for the whole module."""
    return compute_golden_arrays(GoldenSpec())


class TestRecordCheckRoundTrip:
    def test_record_then_check_passes(self, tmp_path, golden_arrays):
        path = record_golden(tmp_path / "g")
        assert (path / "manifest.json").exists()
        assert (path / "arrays.npz").exists()
        report = check_golden(path, arrays=golden_arrays)
        assert report.ok, report.render()
        assert "FAIL" not in report.render()

    def test_recompute_is_deterministic(self, golden_arrays):
        again = compute_golden_arrays(GoldenSpec())
        assert set(again) == set(golden_arrays)
        for name, value in golden_arrays.items():
            assert again[name].tobytes() == value.tobytes(), name

    def test_manifest_records_provenance(self, tmp_path):
        path = record_golden(tmp_path / "g")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == GOLDEN_FORMAT_VERSION
        assert manifest["spec"]["seed"] == GoldenSpec().seed
        assert manifest["numpy_version"] == np.__version__
        assert "train/loss_curve" in manifest["arrays"]
        # Integer timelines are compared exactly, floats with tolerances.
        assert manifest["arrays"]["alerts/detect_minutes"]["atol"] == 0.0
        assert manifest["arrays"]["train/loss_curve"]["atol"] > 0.0


class TestToleranceViolations:
    def test_perturbed_array_fails_with_readable_diff(self, tmp_path, golden_arrays):
        path = record_golden(tmp_path / "g")
        perturbed = {k: v.copy() for k, v in golden_arrays.items()}
        perturbed["state/lstms.0.w_x"][0, 0] += 1e-3
        report = check_golden(path, arrays=perturbed)
        assert not report.ok
        bad = {entry.name for entry in report.failures}
        assert bad == {"state/lstms.0.w_x"}
        text = report.render()
        assert "FAIL" in text and "state/lstms.0.w_x" in text
        assert "max |Δ|" in report.failures[0].detail  # locates the element

    def test_shape_change_reported(self, tmp_path, golden_arrays):
        path = record_golden(tmp_path / "g")
        mutated = dict(golden_arrays)
        mutated["train/loss_curve"] = mutated["train/loss_curve"][:1]
        report = check_golden(path, arrays=mutated)
        (entry,) = report.failures
        assert entry.name == "train/loss_curve"
        assert "shape changed" in entry.detail

    def test_missing_and_unexpected_arrays_reported(self, tmp_path, golden_arrays):
        path = record_golden(tmp_path / "g")
        mutated = dict(golden_arrays)
        del mutated["inference/survival_curves"]
        mutated["inference/brand_new"] = np.zeros(3)
        report = check_golden(path, arrays=mutated)
        by_name = {entry.name: entry.status for entry in report.failures}
        assert by_name == {
            "inference/survival_curves": "missing",
            "inference/brand_new": "unexpected",
        }


class TestManifestVersioning:
    def test_future_format_version_rejected(self, tmp_path, golden_arrays):
        path = record_golden(tmp_path / "g")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = GOLDEN_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(GoldenFormatError, match="re-record"):
            check_golden(path, arrays=golden_arrays)

    def test_missing_fixture_has_actionable_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="golden record"):
            check_golden(tmp_path / "nowhere")


class TestCommittedFixture:
    def test_committed_fixture_matches_current_code(self, golden_arrays):
        """The acceptance gate: the in-repo fixture passes as-is."""
        report = check_golden(FIXTURE_DIR, arrays=golden_arrays)
        assert report.ok, report.render()

    def test_cli_check_passes(self, capsys, golden_arrays, monkeypatch):
        import repro.testing.golden as golden_mod
        from repro.cli import main

        # The CLI path recomputes; reuse the module fixture to keep it fast.
        monkeypatch.setattr(
            golden_mod, "compute_golden_arrays", lambda spec=None: golden_arrays
        )
        rc = main(["golden", "check", "--path", str(FIXTURE_DIR)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "arrays within tolerance" in out

    def test_cli_record_roundtrip(self, tmp_path, capsys, golden_arrays, monkeypatch):
        import repro.testing.golden as golden_mod
        from repro.cli import main

        monkeypatch.setattr(
            golden_mod, "compute_golden_arrays", lambda spec=None: golden_arrays
        )
        target = tmp_path / "fresh"
        assert main(["golden", "record", "--path", str(target)]) == 0
        assert main(["golden", "check", "--path", str(target)]) == 0
        out = capsys.readouterr().out
        assert "recorded golden fixture" in out
