"""Tests for the cached feature extractor and the pooling ablation knob."""

import numpy as np
import pytest

from repro.core import XatuModel, XatuModelConfig, TimescaleSpec
from repro.signals import AlertRecord, CachedFeatureExtractor, FeatureExtractor
from repro.synth import AttackType


@pytest.fixture(scope="module")
def extractor_pair(trace):
    base = FeatureExtractor(trace)
    cached = CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=64)
    return trace, base, cached


class TestCachedFeatureExtractor:
    def test_matches_direct_extraction(self, extractor_pair):
        trace, base, cached = extractor_pair
        cid = trace.world.customers[0].customer_id
        for start, end in [(0, 30), (50, 114), (60, 200), (63, 65)]:
            direct = base.window(cid, start, end)
            from_cache = cached.window(cid, start, end)
            assert from_cache == pytest.approx(direct)

    def test_cache_hits_on_overlapping_windows(self, trace):
        cached = CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=64)
        cid = trace.world.customers[1].customer_id
        for minute in range(100, 130):
            cached.window(cid, minute - 60, minute)
        assert cached.hits > cached.fills

    def test_alert_invalidates_only_later_blocks(self, trace):
        cached = CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=64)
        cid = trace.world.customers[2].customer_id
        cached.window(cid, 0, 256)  # fills blocks 0..3
        before = cached.cached_blocks
        cached.add_alert(
            AlertRecord(
                customer_id=cid, attack_type=AttackType.UDP_FLOOD,
                detect_minute=130, end_minute=140, peak_bytes=1e9,
                attackers=frozenset({1, 2}),
            )
        )
        # Blocks 0 and 1 (minutes < 128) survive; 2 and 3 are dropped.
        assert cached.cached_blocks == before - 2

    def test_alert_changes_reflected_after_invalidation(self, trace):
        cid = trace.world.customers[3].customer_id
        cached = CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=64)
        quiet = cached.window(cid, 128, 192).copy()
        cached.add_alert(
            AlertRecord(
                customer_id=cid, attack_type=AttackType.TCP_SYN,
                detect_minute=130, end_minute=140, peak_bytes=1e9,
                attackers=frozenset({5}),
            )
        )
        after = cached.window(cid, 128, 192)
        from repro.signals import group_slices
        a4 = group_slices()["A4"]
        assert after[:, a4].sum() > quiet[:, a4].sum()

    def test_other_customers_unaffected_by_alert(self, trace):
        cached = CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=64)
        cid_a = trace.world.customers[0].customer_id
        cid_b = trace.world.customers[1].customer_id
        cached.window(cid_a, 0, 64)
        cached.window(cid_b, 0, 64)
        cached.add_alert(
            AlertRecord(
                customer_id=cid_a, attack_type=AttackType.UDP_FLOOD,
                detect_minute=0, end_minute=5, peak_bytes=1.0,
                attackers=frozenset({9}),
            )
        )
        # Customer B's block survives; A's was invalidated.
        assert (cid_b, 0) in cached._blocks
        assert (cid_a, 0) not in cached._blocks

    def test_invalidate_all(self, extractor_pair):
        trace, _base, cached = extractor_pair
        cached.window(trace.world.customers[0].customer_id, 0, 64)
        cached.invalidate()
        assert cached.cached_blocks == 0

    def test_bad_ranges_rejected(self, extractor_pair):
        _trace, _base, cached = extractor_pair
        with pytest.raises(ValueError):
            cached.window(0, 10, 10)
        with pytest.raises(ValueError):
            cached.window(0, -5, 10)

    def test_bad_block_size_rejected(self, trace):
        with pytest.raises(ValueError):
            CachedFeatureExtractor(FeatureExtractor(trace), block_minutes=0)


class TestPoolingKnob:
    def make_config(self, pooling):
        return XatuModelConfig(
            n_features=6, hidden_size=4, dense_size=4, detect_window=5,
            timescales=(
                TimescaleSpec("short", 1, 20),
                TimescaleSpec("long", 5, 8),
            ),
            pooling=pooling,
        )

    def test_invalid_pooling_rejected(self):
        with pytest.raises(ValueError, match="pooling"):
            XatuModel(self.make_config("median"))

    def test_avg_and_max_differ(self, rng):
        x = rng.normal(size=(2, 40, 6))
        avg_model = XatuModel(self.make_config("avg"))
        max_model = XatuModel(self.make_config("max"))
        # Same weights, different pooling.
        max_model.load_state_dict(avg_model.state_dict())
        a = avg_model.hazards_np(x)
        b = max_model.hazards_np(x)
        assert not np.allclose(a, b)

    def test_max_pooling_trains(self, rng):
        from repro.core import TrainConfig, XatuTrainer
        from tests.test_core_model import TestTrainer

        cfg = self.make_config("max")
        model = XatuModel(cfg)
        data = TestTrainer().make_toy_set(rng, cfg)
        result = XatuTrainer(model, TrainConfig(epochs=4, learning_rate=5e-3)).fit(data)
        assert result.train_losses[-1] < result.train_losses[0]
