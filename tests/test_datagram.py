"""Tests for the v5-style export datagram codec and sequence tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow import DatagramCodec, DatagramHeader, SequenceTracker
from tests.test_netflow import make_flow


class TestDatagramCodec:
    def test_roundtrip(self):
        codec = DatagramCodec(engine_id=7)
        flows = [make_flow(timestamp=i) for i in range(5)]
        header, decoded = DatagramCodec.decode(
            codec.encode(flows, sys_uptime_ms=1234, unix_secs=99)
        )
        assert decoded == flows
        assert header.version == 5
        assert header.count == 5
        assert header.sys_uptime_ms == 1234
        assert header.unix_secs == 99
        assert header.engine_id == 7

    def test_sequence_advances_by_record_count(self):
        codec = DatagramCodec()
        h1, _ = DatagramCodec.decode(codec.encode([make_flow()] * 3))
        h2, _ = DatagramCodec.decode(codec.encode([make_flow()] * 2))
        assert h1.flow_sequence == 0
        assert h2.flow_sequence == 3

    def test_empty_datagram(self):
        codec = DatagramCodec()
        header, flows = DatagramCodec.decode(codec.encode([]))
        assert flows == [] and header.count == 0

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            DatagramCodec.decode(b"\x05\x00")

    def test_wrong_version_rejected(self):
        codec = DatagramCodec()
        blob = bytearray(codec.encode([make_flow()]))
        blob[0] = 9
        with pytest.raises(ValueError, match="version"):
            DatagramCodec.decode(bytes(blob))

    def test_length_mismatch_rejected(self):
        codec = DatagramCodec()
        blob = codec.encode([make_flow()])
        with pytest.raises(ValueError, match="length mismatch"):
            DatagramCodec.decode(blob[:-4])

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 10), engine=st.integers(0, 2**31 - 1))
    def test_roundtrip_property(self, n, engine):
        codec = DatagramCodec(engine_id=engine)
        flows = [make_flow(timestamp=i) for i in range(n)]
        header, decoded = DatagramCodec.decode(codec.encode(flows))
        assert decoded == flows and header.engine_id == engine


class TestSequenceTracker:
    def headers(self, codec, sizes):
        result = []
        for n in sizes:
            header, _ = DatagramCodec.decode(codec.encode([make_flow()] * n))
            result.append(header)
        return result

    def test_no_loss_contiguous(self):
        tracker = SequenceTracker()
        for header in self.headers(DatagramCodec(), [3, 2, 4]):
            assert tracker.observe(header) == 0
        assert tracker.records_lost == 0
        assert tracker.records_received == 9
        assert tracker.loss_rate == 0.0

    def test_dropped_datagram_counted(self):
        tracker = SequenceTracker()
        headers = self.headers(DatagramCodec(), [3, 2, 4])
        tracker.observe(headers[0])
        # Datagram with 2 records lost in transit.
        lost = tracker.observe(headers[2])
        assert lost == 2
        assert tracker.records_lost == 2
        assert tracker.loss_rate == pytest.approx(2 / 9)

    def test_out_of_order_flagged(self):
        tracker = SequenceTracker()
        headers = self.headers(DatagramCodec(), [3, 2])
        tracker.observe(headers[1])
        tracker.observe(headers[0])
        assert tracker.out_of_order == 1

    def test_engines_tracked_independently(self):
        tracker = SequenceTracker()
        a = self.headers(DatagramCodec(engine_id=1), [5])
        b = self.headers(DatagramCodec(engine_id=2), [5])
        assert tracker.observe(a[0]) == 0
        assert tracker.observe(b[0]) == 0
        assert tracker.records_lost == 0
