"""Tests for the FP-inspection and generality analyses."""

import numpy as np
import pytest

from repro.core.detector import XatuAlert
from repro.eval import classify_false_positives, generality_split
from repro.scrub import DiversionWindow, ScrubbingCenter


class TestFalsePositiveClassification:
    def test_matched_alerts_skipped(self, trace):
        alerts = [XatuAlert(0, 100, 0.1, event_id=5)]
        assert classify_false_positives(trace, alerts) == []

    def test_quiet_alert_not_suspicious(self, trace):
        event = trace.events[0]
        quiet_minute = max(60, event.onset - 120)
        alerts = [XatuAlert(event.customer_id, quiet_minute, 0.1, event_id=-1)]
        verdicts = classify_false_positives(trace, alerts)
        assert len(verdicts) == 1
        assert not verdicts[0].likely_missed_attack

    def test_alert_at_attack_onset_is_suspicious(self, trace):
        """An 'FP' that actually lands on a flood classifies as missed attack."""
        event = max(trace.events, key=lambda e: e.anomalous_bytes.max())
        peak_minute = event.onset + int(np.argmax(event.anomalous_bytes))
        alerts = [XatuAlert(event.customer_id, peak_minute, 0.1, event_id=-1)]
        verdicts = classify_false_positives(trace, alerts, window=2)
        assert verdicts[0].likely_missed_attack
        assert verdicts[0].volume_ratio > 3.0

    def test_alert_at_horizon_edge(self, trace):
        alerts = [XatuAlert(0, trace.horizon - 1, 0.1, event_id=-1)]
        verdicts = classify_false_positives(trace, alerts)
        assert len(verdicts) == 1
        assert np.isfinite(verdicts[0].volume_ratio) or verdicts[0].volume_ratio == np.inf


class TestGeneralitySplit:
    @pytest.fixture(scope="class")
    def split(self, trace):
        # Divert everything: every event gets delay <= 0 and eff 1.
        windows = [
            DiversionWindow(c.customer_id, 0, trace.horizon)
            for c in trace.world.customers
        ]
        report = ScrubbingCenter(trace).account(windows)
        half = trace.horizon // 2
        return trace, generality_split(
            trace, report, (0, half), (half, trace.horizon)
        )

    def test_customer_partition_complete(self, split):
        trace, result = split
        assert (
            result.n_seen_customers + result.n_unseen_customers
            == len(trace.world.customers)
        )

    def test_event_partition_complete(self, split):
        trace, result = split
        half = trace.horizon // 2
        n_eval = sum(1 for e in trace.events if e.onset >= half)
        assert len(result.seen_delays) + len(result.unseen_delays) == n_eval

    def test_full_diversion_yields_full_effectiveness(self, split):
        _trace, result = split
        for values in (result.seen_effectiveness, result.unseen_effectiveness):
            if len(values):
                assert values == pytest.approx(np.ones(len(values)))

    def test_unseen_fraction_in_unit_interval(self, split):
        _trace, result = split
        assert 0.0 <= result.unseen_fraction <= 1.0

    def test_missed_delay_fills_undetected(self, trace):
        report = ScrubbingCenter(trace).account([])
        half = trace.horizon // 2
        result = generality_split(
            trace, report, (0, half), (half, trace.horizon), missed_delay=42
        )
        combined = np.concatenate([result.seen_delays, result.unseen_delays])
        assert (combined == 42).all()
