"""Differential tests for the fused fast-path kernels (repro.nn.fused).

Three layers of defence around the hand-derived kernels:

* fused vs unfused — the single-node LSTM / pooling ops must match the
  generic per-op tape path, forward *and* backward, to <= 1e-8 in float64
  (hypothesis drives randomized shapes/seeds);
* fused vs scalar reference — the obviously-correct loops in
  :mod:`repro.testing.reference` pin down the semantics both share;
* inference lane — ``no_grad`` output must be byte-identical to the
  training-mode forward, and the ``inference_dtype`` float32 policy must
  stay close while actually producing float32.

Plus regression coverage for the batched-matmul-times-vector gradient and
the recursive ``Module.train()`` / ``eval()`` protocol the inference path
relies on, and a smoke test of the benchmark harness the kernels are
tracked by.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    LSTM,
    AvgPool1D,
    Dense,
    Dropout,
    MaxPool1D,
    Sequential,
    Tensor,
    gradcheck,
    inference_dtype,
    no_grad,
    set_fused,
)
from repro.nn.autograd import resolve_inference_dtype
from repro.nn.fused import avg_pool_1d, lstm_sequence, max_pool_1d
from repro.testing import (
    max_abs_diff,
    reference_avg_pool_1d,
    reference_lstm_sequence,
    reference_max_pool_1d,
)

TOL = 1e-8


def _lstm_pair(features, hidden, seed):
    """Two LSTMs sharing weights: one fused, one on the generic tape."""
    fused = LSTM(features, hidden, rng=np.random.default_rng(seed), fused=True)
    unfused = LSTM(features, hidden, rng=np.random.default_rng(seed), fused=False)
    return fused, unfused


class TestFusedLSTMMatchesUnfused:
    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(1, 4),
        steps=st.integers(1, 12),
        features=st.integers(1, 6),
        hidden=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    def test_forward_and_backward(self, batch, steps, features, hidden, seed):
        fused, unfused = _lstm_pair(features, hidden, seed)
        x = np.random.default_rng(seed + 1).normal(size=(batch, steps, features))
        xf = Tensor(x, requires_grad=True)
        xu = Tensor(x, requires_grad=True)

        of, (hf, cf) = fused(xf)
        ou, (hu, cu) = unfused(xu)
        assert max_abs_diff(of.numpy(), ou.numpy()) <= TOL
        assert max_abs_diff(hf.numpy(), hu.numpy()) <= TOL
        assert max_abs_diff(cf.numpy(), cu.numpy()) <= TOL

        # Route gradient through outputs AND both final states.
        (of.sum() + (hf * 2.0).sum() + (cf * 3.0).sum()).backward()
        (ou.sum() + (hu * 2.0).sum() + (cu * 3.0).sum()).backward()
        assert max_abs_diff(xf.grad, xu.grad) <= TOL
        for pf, pu in zip(fused.parameters(), unfused.parameters()):
            assert max_abs_diff(pf.grad, pu.grad) <= TOL

    def test_threaded_state_matches_and_carries_grad(self, rng):
        fused, unfused = _lstm_pair(3, 4, seed=7)
        x = rng.normal(size=(2, 9, 3))
        h0 = rng.normal(size=(2, 4))
        c0 = rng.normal(size=(2, 4))
        grads = {}
        for name, lstm in (("fused", fused), ("unfused", unfused)):
            sh = Tensor(h0, requires_grad=True)
            sc = Tensor(c0, requires_grad=True)
            out, _ = lstm(Tensor(x), state=(sh, sc))
            out.sum().backward()
            grads[name] = (out.numpy(), sh.grad, sc.grad)
        for got, want in zip(grads["fused"], grads["unfused"]):
            assert max_abs_diff(got, want) <= TOL

    def test_fused_gradcheck_against_finite_differences(self):
        lstm = LSTM(3, 2, rng=np.random.default_rng(5), fused=True)
        x = Tensor(np.random.default_rng(6).normal(size=(2, 4, 3)))

        def loss(w_x, w_h, bias):
            out, (h, c) = lstm_sequence(x, w_x, w_h, bias)
            return (out * out).sum() + h.sum() + (c * c).sum()

        gradcheck(loss, [lstm.w_x, lstm.w_h, lstm.bias])

    def test_matches_scalar_reference(self, rng):
        lstm = LSTM(4, 3, rng=np.random.default_rng(2), fused=True)
        x = rng.normal(size=(2, 6, 4))
        out, _ = lstm(Tensor(x))
        want = reference_lstm_sequence(
            x, lstm.w_x.numpy(), lstm.w_h.numpy(), lstm.bias.numpy()
        )
        assert max_abs_diff(out.numpy(), want) <= TOL


class TestFusedPoolingMatchesUnfused:
    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(1, 3),
        steps=st.integers(1, 25),
        features=st.integers(1, 5),
        window=st.integers(2, 7),
        seed=st.integers(0, 100),
        kind=st.sampled_from(["avg", "max"]),
    )
    def test_forward_and_backward(self, batch, steps, features, window, seed, kind):
        cls = AvgPool1D if kind == "avg" else MaxPool1D
        x = np.random.default_rng(seed).normal(size=(batch, steps, features))
        xf = Tensor(x, requires_grad=True)
        xu = Tensor(x, requires_grad=True)
        of = cls(window, fused=True)(xf)
        ou = cls(window, fused=False)(xu)
        assert max_abs_diff(of.numpy(), ou.numpy()) <= TOL
        (of * of).sum().backward()
        (ou * ou).sum().backward()
        assert max_abs_diff(xf.grad, xu.grad) <= TOL

    def test_max_pool_splits_grad_among_ties(self):
        # Two equal maxima in one window: each should get half the gradient.
        x = Tensor(
            np.array([[[1.0], [5.0], [5.0], [0.0]]]), requires_grad=True
        )
        max_pool_1d(x, 4).sum().backward()
        assert x.grad.ravel() == pytest.approx([0.0, 0.5, 0.5, 0.0])

    @pytest.mark.parametrize("steps", [5, 6, 7])
    def test_matches_scalar_reference_with_ragged_tail(self, steps, rng):
        x = rng.normal(size=(2, steps, 3))
        assert max_abs_diff(
            avg_pool_1d(Tensor(x), 3).numpy(), reference_avg_pool_1d(x, 3)
        ) <= TOL
        assert max_abs_diff(
            max_pool_1d(Tensor(x), 3).numpy(), reference_max_pool_1d(x, 3)
        ) <= TOL

    def test_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 7, 3)))
        gradcheck(lambda x: (avg_pool_1d(x, 3) ** 2).sum(), [x])
        # Perturb distinct values so the (subgradient) max stays unambiguous.
        xm = Tensor(np.arange(24, dtype=np.float64).reshape(2, 4, 3) * 0.1)
        gradcheck(lambda x: (max_pool_1d(x, 3) ** 2).sum(), [xm])


class TestInferenceLane:
    def test_no_grad_forward_is_byte_identical(self, rng):
        lstm = LSTM(5, 4, rng=np.random.default_rng(3), fused=True)
        x = Tensor(rng.normal(size=(2, 15, 5)))
        out_train, (h_train, c_train) = lstm(x)
        with no_grad():
            out_inf, (h_inf, c_inf) = lstm(x)
        assert np.array_equal(out_train.numpy(), out_inf.numpy())
        assert np.array_equal(h_train.numpy(), h_inf.numpy())
        assert np.array_equal(c_train.numpy(), c_inf.numpy())
        # And the inference lane really is graph-free.
        assert out_inf._parents == () and out_inf._backward is None

    def test_model_hazards_np_is_byte_identical(self):
        from repro.core import XatuModel

        from .conftest import small_model_config

        config = small_model_config()
        config.n_features = 6
        model = XatuModel(config)
        x = np.random.default_rng(4).normal(
            size=(2, config.lookback_minutes, config.n_features)
        )
        tape_out = model(Tensor(x)).numpy()
        assert np.array_equal(model.hazards_np(x), tape_out)
        assert model.training  # restored afterwards

    def test_inference_dtype_float32(self, rng):
        lstm = LSTM(4, 3, rng=np.random.default_rng(8), fused=True)
        x = rng.normal(size=(2, 10, 4))
        out64, _ = lstm(Tensor(x))
        with no_grad(), inference_dtype(np.float32):
            out32, _ = lstm(Tensor(x))
        assert out32.numpy().dtype == np.float32
        assert max_abs_diff(out32.numpy(), out64.numpy()) <= 1e-4
        # Policy is scoped to the context manager…
        assert resolve_inference_dtype() is None
        # …and inert while gradients are enabled.
        with inference_dtype(np.float32):
            assert resolve_inference_dtype() is None
            with no_grad():
                assert resolve_inference_dtype() == np.float32

    def test_inference_dtype_rejects_non_float(self):
        with pytest.raises(TypeError, match="float"):
            with inference_dtype(np.int32):
                pass


class TestTrainEvalProtocol:
    def test_recursive_over_lists_and_containers(self):
        from repro.core import XatuModel

        from .conftest import small_model_config

        model = XatuModel(small_model_config())
        assert all(m.training for m in model.modules())
        model.eval()
        assert not any(m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_sequential_train_flag_reaches_dropout(self, rng):
        drop = Dropout(0.9, rng=np.random.default_rng(0))
        seq = Sequential(Dense(3, 3, rng=rng), drop)
        seq.eval()
        assert not drop.training
        x = Tensor(np.ones((4, 3)))
        assert np.array_equal(drop(x).numpy(), x.numpy())  # identity in eval
        seq.train()
        assert drop.training

    def test_set_fused_toggles_kernel_layers(self):
        seq = Sequential(AvgPool1D(3), MaxPool1D(2), Dense(2, 2))
        set_fused(seq, False)
        assert not seq.layers[0].fused and not seq.layers[1].fused
        set_fused(seq, True)
        assert seq.layers[0].fused and seq.layers[1].fused


class TestMatmulVectorRegression:
    """Batched matrix @ vector used to return a ``None`` gradient slot."""

    def test_batched_matrix_times_vector_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_vector_times_batched_matrix_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        gradcheck(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_grad_is_populated_not_none(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and a.grad.shape == a.shape
        assert b.grad is not None and b.grad.shape == b.shape


class TestBenchHarness:
    def test_smoke_run_and_json_roundtrip(self, tmp_path):
        from repro.bench import load_bench_json, run_all, write_bench_json

        report = run_all(
            tag="t", smoke=True, cases=("lstm_forward", "pooling")
        )
        speedups = report.speedups()
        assert set(speedups) == {"lstm_forward", "pooling"}
        assert all(s > 0 for s in speedups.values())
        assert "lstm_forward" in report.render()

        out = write_bench_json(report, tmp_path)
        assert out.name == "BENCH_t.json"
        payload = load_bench_json(out)
        assert payload["smoke"] is True
        assert payload["speedups"].keys() == speedups.keys()
        assert payload["benchmarks"]["pooling/fused"]["reps"] == 1

    def test_version_mismatch_rejected(self, tmp_path):
        from repro.bench import load_bench_json

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"format_version": 999}')
        with pytest.raises(ValueError, match="format_version"):
            load_bench_json(bad)

    def test_committed_baseline_is_current_format(self):
        from pathlib import Path

        from repro.bench import load_bench_json

        path = Path(__file__).resolve().parents[1] / (
            "benchmarks/results/BENCH_fused.json"
        )
        payload = load_bench_json(path)
        assert not payload["smoke"]
        assert payload["speedups"]["lstm_train_step"] >= 5.0
        assert payload["speedups"]["synthetic_day"] >= 3.0
