"""Integration tests: the full §6 pipeline on a small scenario.

The heavy pipeline run is session-scoped (see conftest) — these tests
assert on its artefacts from multiple angles.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, SplitSpec, XatuPipeline
from repro.scrub import DiversionWindow, ScrubbingCenter


class TestSplitSpec:
    def test_default_is_50_20_30(self):
        (a0, a1), (b0, b1), (c0, c1) = SplitSpec().bounds(1000)
        assert (a0, a1) == (0, 500)
        assert (b0, b1) == (500, 700)
        assert (c0, c1) == (700, 1000)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SplitSpec(train=0.5, validation=0.5, test=0.5)


class TestPipelineRun:
    def test_training_loss_decreases(self, pipeline_result):
        _pipeline, result = pipeline_result
        assert result.train_losses[-1] < result.train_losses[0]

    def test_calibration_respects_bound_on_validation(self, pipeline_result):
        pipeline, result = pipeline_result
        assert result.calibration.feasible
        assert result.calibration.overhead_p75 <= pipeline.config.overhead_bound + 1e-9

    def test_metrics_in_valid_ranges(self, pipeline_result):
        _pipeline, result = pipeline_result
        assert 0.0 <= result.effectiveness.median <= 1.0
        assert result.overhead.median >= 0.0
        assert np.isfinite(result.delay.median)

    def test_detection_windows_inside_test_range(self, pipeline_result):
        _pipeline, result = pipeline_result
        lo, hi = result.test_range
        for window in result.detection.windows:
            assert lo <= window.start < window.end <= hi

    def test_alerts_reference_real_customers(self, pipeline_result):
        pipeline, result = pipeline_result
        ids = {c.customer_id for c in pipeline.trace.world.customers}
        for alert in result.detection.alerts:
            assert alert.customer_id in ids
            assert 0.0 <= alert.survival < 1.0

    def test_xatu_detects_earlier_than_cdet_on_shared_events(self, pipeline_result):
        """The headline claim: on events both systems catch, Xatu's median
        detection delay is no worse than CDet's."""
        pipeline, result = pipeline_result
        lo, hi = result.eval_range
        cdet_delay = {}
        for alert in result.cdet_alerts:
            if alert.event_id >= 0:
                event = pipeline.trace.events[alert.event_id]
                if lo <= event.onset < hi:
                    delay = alert.detect_minute - event.onset
                    cdet_delay.setdefault(alert.event_id, delay)
        shared = []
        for event_id, cdelay in cdet_delay.items():
            xdelay = result.report.detection_delay.get(event_id)
            if xdelay is not None:
                shared.append((xdelay, cdelay))
        if not shared:
            pytest.skip("no shared detections in eval range for this seed")
        x_med = np.median([x for x, _ in shared])
        c_med = np.median([c for _, c in shared])
        assert x_med <= c_med

    def test_xatu_effectiveness_beats_cdet(self, pipeline_result):
        pipeline, result = pipeline_result
        lo, hi = result.eval_range
        windows = [
            DiversionWindow(a.customer_id, a.detect_minute, a.end_minute)
            for a in result.cdet_alerts
        ]
        cdet_report = ScrubbingCenter(pipeline.trace).account(windows)
        events = [e for e in pipeline.trace.events if lo <= e.onset < hi]
        if len(events) < 2:
            pytest.skip("too few eval events for this seed")
        cdet_eff = np.median([cdet_report.effectiveness(e.event_id) for e in events])
        assert result.effectiveness.median >= cdet_eff - 1e-9

    def test_summary_keys(self, pipeline_result):
        _pipeline, result = pipeline_result
        summary = result.summary()
        assert set(summary) == {
            "effectiveness_median", "overhead_p75", "delay_median", "threshold",
        }

    def test_stabilization_period_excluded(self, pipeline_result):
        _pipeline, result = pipeline_result
        (test_lo, test_hi) = result.test_range
        (eval_lo, eval_hi) = result.eval_range
        assert eval_lo > test_lo
        assert eval_hi == test_hi


@pytest.mark.slow
class TestFeatureAblationPipeline:
    def test_volumetric_only_pipeline_runs(self):
        """The no-aux ablation path must run end to end."""
        from tests.conftest import small_model_config, small_scenario
        from repro.core import TrainConfig

        config = PipelineConfig(
            scenario=small_scenario(seed=4),
            model=small_model_config(),
            train=TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3),
            overhead_bound=0.5,
            enabled_groups=frozenset({"V"}),
        )
        result = XatuPipeline(config).run()
        assert 0.0 <= result.effectiveness.median <= 1.0
