"""xatuflow: symbol table, call graph, CFG, and the XF001–XF004 deep
checkers.

The positive fixtures here are deliberately *interprocedural* — each
rule gets at least one case where the triggering fact crosses two or
more function calls (a return-dtype summary, a stream minted in a
helper, a spawn entry two hops from the write, an unguarded chain), so
they demonstrate exactly what the shallow per-file XL rules cannot see.
Negatives are as load-bearing as positives: the exclusive-branch,
ownership-transfer, and mode-aware cases pin the FP-avoidance design.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.flow import (
    ALL_FLOW_RULE_IDS,
    SymbolGraph,
    SymbolTable,
    all_flow_checkers,
    build_call_graph,
    build_cfg,
    load_symbol_graph,
    manifest_digest,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def graph_of(sources: dict[str, str]) -> SymbolGraph:
    table = SymbolTable.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    return SymbolGraph(table, build_call_graph(table))


def run_checker(rule_id: str, sources: dict[str, str]):
    sg = graph_of(sources)
    (checker,) = [c for c in all_flow_checkers() if c.id == rule_id]
    return checker.run(sg)


def fires(rule_id: str, sources: dict[str, str]):
    findings = run_checker(rule_id, sources)
    assert findings, f"{rule_id} should fire"
    return findings


def silent(rule_id: str, sources: dict[str, str]):
    findings = run_checker(rule_id, sources)
    assert findings == [], f"{rule_id} should stay silent; got " + "\n".join(
        f.render() for f in findings
    )


# ----------------------------------------------------------------------
# symbol table
# ----------------------------------------------------------------------
class TestSymbolTable:
    def test_module_name_for(self):
        assert module_name_for("src/repro/core/model.py") == "repro.core.model"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("tools/gen.py") == "tools.gen"

    def test_collects_functions_classes_methods(self):
        sg = graph_of(
            {
                "src/pkg/mod.py": """
                def helper():
                    pass

                class Widget:
                    def __init__(self):
                        pass

                    def spin(self):
                        pass
                """
            }
        )
        table = sg.table
        assert "pkg.mod:helper" in table.functions
        assert "pkg.mod:Widget" in table.classes
        assert "pkg.mod:Widget.spin" in table.functions

    def test_resolves_through_import_alias(self):
        sg = graph_of(
            {
                "src/pkg/a.py": "def target():\n    pass\n",
                "src/pkg/b.py": "from pkg.a import target as t\n",
            }
        )
        mod_b = sg.table.modules["pkg.b"]
        resolved = sg.table.resolve(mod_b, "t")
        assert resolved is not None and resolved.qualname == "pkg.a:target"

    def test_resolves_relative_import(self):
        sg = graph_of(
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "def target():\n    pass\n",
                "src/pkg/b.py": "from .a import target\n",
            }
        )
        mod_b = sg.table.modules["pkg.b"]
        resolved = sg.table.resolve(mod_b, "target")
        assert resolved is not None and resolved.qualname == "pkg.a:target"

    def test_resolves_one_hop_reexport(self):
        sg = graph_of(
            {
                "src/pkg/__init__.py": "from .a import target\n",
                "src/pkg/a.py": "def target():\n    pass\n",
                "src/other.py": "from pkg import target\n",
            }
        )
        mod = sg.table.modules["other"]
        resolved = sg.table.resolve(mod, "target")
        assert resolved is not None and resolved.qualname == "pkg.a:target"

    def test_method_of_walks_bases(self):
        sg = graph_of(
            {
                "src/pkg/m.py": """
                class Base:
                    def go(self):
                        pass

                class Child(Base):
                    pass
                """
            }
        )
        child = sg.table.classes["pkg.m:Child"]
        method = sg.table.method_of(child, "go")
        assert method is not None and method.qualname == "pkg.m:Base.go"


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_direct_and_self_edges(self):
        sg = graph_of(
            {
                "src/pkg/m.py": """
                def helper():
                    pass

                class Engine:
                    def run(self):
                        self.step()
                        helper()

                    def step(self):
                        pass
                """
            }
        )
        callees = {s.callee for s in sg.graph.callees_of("pkg.m:Engine.run")}
        assert callees == {"pkg.m:Engine.step", "pkg.m:helper"}

    def test_cross_module_edge_through_import(self):
        sg = graph_of(
            {
                "src/pkg/a.py": "def target():\n    pass\n",
                "src/pkg/b.py": """
                from pkg.a import target

                def caller():
                    target()
                """,
            }
        )
        callees = {s.callee for s in sg.graph.callees_of("pkg.b:caller")}
        assert callees == {"pkg.a:target"}

    def test_constructor_edge_records_class(self):
        sg = graph_of(
            {
                "src/pkg/m.py": """
                class Widget:
                    def __init__(self):
                        pass

                def make():
                    return Widget()
                """
            }
        )
        (site,) = sg.graph.callees_of("pkg.m:make")
        assert site.callee == "pkg.m:Widget.__init__"
        assert site.constructs == "pkg.m:Widget"

    def test_reachable_from_returns_shortest_paths(self):
        sg = graph_of(
            {
                "src/pkg/m.py": """
                def a():
                    b()

                def b():
                    c()

                def c():
                    pass
                """
            }
        )
        paths = sg.graph.reachable_from(["pkg.m:a"])
        assert paths["pkg.m:c"] == ["pkg.m:a", "pkg.m:b", "pkg.m:c"]

    def test_unique_name_fallback_marked_heuristic(self):
        sg = graph_of(
            {
                "src/pkg/m.py": """
                class Only:
                    def very_unique_method(self):
                        pass

                def caller(obj):
                    obj.very_unique_method()
                """
            }
        )
        (site,) = sg.graph.callees_of("pkg.m:caller")
        assert site.heuristic
        assert site.callee == "pkg.m:Only.very_unique_method"


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
class TestCfg:
    def _cfg(self, source: str):
        import ast

        tree = ast.parse(textwrap.dedent(source))
        func = tree.body[0]
        return func, build_cfg(func)

    def test_if_else_branches_are_exclusive(self):
        func, cfg = self._cfg(
            """
            def f(cond):
                if cond:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        if_stmt = func.body[0]
        then_block = cfg.block_of(if_stmt.body[0])
        else_block = cfg.block_of(if_stmt.orelse[0])
        assert then_block != else_block
        assert not cfg.reaches(then_block, else_block)
        assert not cfg.reaches(else_block, then_block)

    def test_sequential_statements_reach(self):
        func, cfg = self._cfg(
            """
            def f(cond):
                if cond:
                    a = 1
                b = 2
                if not cond:
                    c = 3
            """
        )
        first = cfg.block_of(func.body[0].body[0])
        last = cfg.block_of(func.body[2].body[0])
        assert cfg.reaches(first, last)

    def test_loop_body_is_on_a_cycle(self):
        func, cfg = self._cfg(
            """
            def f(items):
                total = 0
                for item in items:
                    total += item
                return total
            """
        )
        body_block = cfg.block_of(func.body[1].body[0])
        top_block = cfg.block_of(func.body[0])
        assert cfg.in_loop(body_block)
        assert not cfg.in_loop(top_block)

    def test_return_terminates_path(self):
        func, cfg = self._cfg(
            """
            def f(cond):
                if cond:
                    return 1
                return 2
            """
        )
        ret_block = cfg.block_of(func.body[0].body[0])
        after_block = cfg.block_of(func.body[1])
        assert not cfg.reaches(ret_block, after_block)


# ----------------------------------------------------------------------
# XF001 dtype-flow
# ----------------------------------------------------------------------
class TestDtypeFlow:
    def test_interprocedural_mixed_join_two_hops(self):
        # The f64 provenance crosses TWO call returns before the join —
        # per-file rules cannot connect make_base -> load -> combine.
        fires(
            "XF001",
            {
                "src/pkg/a.py": """
                import numpy as np

                def make_base():
                    return np.zeros(8)

                def load():
                    return make_base()
                """,
                "src/pkg/b.py": """
                import numpy as np
                from pkg.a import load

                def combine():
                    lane = np.asarray([1.0], dtype=np.float32)
                    base = load()
                    return lane + base
                """,
            },
        )

    def test_same_dtype_join_silent(self):
        silent(
            "XF001",
            {
                "src/pkg/a.py": """
                import numpy as np

                def make_base():
                    return np.zeros(8, dtype=np.float32)

                def combine():
                    lane = np.asarray([1.0], dtype=np.float32)
                    return lane + make_base()
                """
            },
        )

    def test_unknown_dtype_never_fires(self):
        # asarray without dtype is input-dependent: unknown, not f64
        silent(
            "XF001",
            {
                "src/pkg/a.py": """
                import numpy as np

                def combine(x):
                    lane = np.asarray(x)
                    other = np.zeros(4, dtype=np.float32)
                    return lane + other
                """
            },
        )

    def test_concatenate_mixed_fires(self):
        fires(
            "XF001",
            {
                "src/pkg/a.py": """
                import numpy as np

                def f():
                    a = np.zeros(4, dtype=np.float32)
                    b = np.zeros(4, dtype=np.float64)
                    return np.concatenate([a, b])
                """
            },
        )

    def test_astype_cast_silences(self):
        silent(
            "XF001",
            {
                "src/pkg/a.py": """
                import numpy as np

                def make_base():
                    return np.zeros(8)

                def combine():
                    lane = np.asarray([1.0], dtype=np.float32)
                    base = make_base().astype(np.float32)
                    return lane + base
                """
            },
        )


# ----------------------------------------------------------------------
# XF002 seed-stream discipline
# ----------------------------------------------------------------------
class TestSeedStreams:
    def test_double_consumption_fires(self):
        fires(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                def setup(seed):
                    ss = np.random.SeedSequence(seed)
                    a = np.random.default_rng(ss)
                    b = np.random.default_rng(ss)
                    return a, b
                """
            },
        )

    def test_exclusive_branches_silent(self):
        # one stream, two consumers — but on exclusive control-flow
        # paths, so exactly one executes: this is the scenario.py shape.
        silent(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                def setup(seed, budget):
                    ss = np.random.SeedSequence(seed)
                    if budget:
                        rng = np.random.default_rng(ss)
                    else:
                        rng = np.random.default_rng(ss)
                    return rng
                """
            },
        )

    def test_generator_shared_across_comprehension_fires(self):
        fires(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                class Sampler:
                    def __init__(self, rate, rng):
                        self.rate = rate
                        self.rng = rng

                def build(rates, seed):
                    rng = np.random.default_rng(seed)
                    return [Sampler(r, rng) for r in rates]
                """
            },
        )

    def test_stream_minted_in_helper_tracked_across_call(self):
        # The Generator identity flows through make_rng()'s return
        # summary; the double hand-off is only visible interprocedurally.
        findings = fires(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                def make_rng(seed):
                    return np.random.default_rng(seed)
                """,
                "src/pkg/b.py": """
                from pkg.a import make_rng

                class Owner:
                    def __init__(self, rng):
                        self.rng = rng

                def build(seed):
                    rng = make_rng(seed)
                    first = Owner(rng)
                    second = Owner(rng)
                    return first, second
                """,
            },
        )
        assert any("second time" in f.message for f in findings)

    def test_sequential_draws_are_not_consumption(self):
        # Passing a generator to plain functions that draw from it is
        # the explicit-rng idiom — deterministic, not a hand-off.
        silent(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                def noise(rng, n):
                    return rng.normal(size=n)

                def build(seed):
                    rng = np.random.default_rng(seed)
                    a = noise(rng, 4)
                    b = noise(rng, 8)
                    return a, b
                """
            },
        )

    def test_spawned_children_one_owner_each_silent(self):
        silent(
            "XF002",
            {
                "src/pkg/a.py": """
                import numpy as np

                class Owner:
                    def __init__(self, rng):
                        self.rng = rng

                def build(seed):
                    root = np.random.SeedSequence(seed)
                    a_ss, b_ss = root.spawn(2)
                    return Owner(np.random.default_rng(a_ss)), Owner(
                        np.random.default_rng(b_ss)
                    )
                """
            },
        )


# ----------------------------------------------------------------------
# XF003 shard-state ownership
# ----------------------------------------------------------------------
_WORKER_SHARED = {
    "src/pkg/serve.py": """
    import threading

    class Detector:
        def __init__(self):
            self.count = 0

        def step(self, x):
            self.count += 1
            return x

    class Engine:
        def __init__(self):
            self.detector = Detector()
            self.thread = threading.Thread(
                target=worker_loop, args=(self.detector,)
            )
            self.thread.start()

        def snapshot(self):
            return self.detector.count

    def worker_loop(detector):
        while True:
            inner(detector)

    def inner(detector):
        detector.step(1)
    """
}


class TestShardOwnership:
    def test_escaped_self_attr_write_two_hops_fires(self):
        # Engine retains self.detector while the worker mutates it; the
        # write sits two calls below the spawn target (worker_loop ->
        # inner -> Detector.step) — invisible to per-file XL006.
        findings = fires("XF003", _WORKER_SHARED)
        assert any("count" in f.message for f in findings)
        assert any("call path" in f.message for f in findings)

    def test_ownership_transfer_inline_construction_silent(self):
        # Constructing the detector inside the spawn args hands it
        # wholly to the worker — the ShardWorker shape.
        silent(
            "XF003",
            {
                "src/pkg/serve.py": """
                import threading

                class Detector:
                    def __init__(self):
                        self.count = 0

                    def step(self, x):
                        self.count += 1
                        return x

                def worker_loop(detector):
                    while True:
                        detector.step(1)

                class Engine:
                    def __init__(self):
                        self.thread = threading.Thread(
                            target=worker_loop, args=(Detector(),)
                        )
                        self.thread.start()
                """
            },
        )

    def test_lock_guard_silences(self):
        sources = {
            "src/pkg/serve.py": _WORKER_SHARED["src/pkg/serve.py"].replace(
                "def step(self, x):\n            self.count += 1",
                "def step(self, x):\n            with self._lock:\n"
                "                self.count += 1",
            )
        }
        silent("XF003", sources)

    def test_owner_comment_silences(self):
        sources = {
            "src/pkg/serve.py": _WORKER_SHARED["src/pkg/serve.py"].replace(
                "self.count += 1", "self.count += 1  # owner: worker thread"
            )
        }
        silent("XF003", sources)

    def test_checkpoint_methods_exempt(self):
        sources = {
            "src/pkg/serve.py": _WORKER_SHARED["src/pkg/serve.py"]
            .replace("def step(self, x):", "def load_state_dict(self, x):")
            .replace("detector.step(1)", "detector.load_state_dict(1)")
        }
        silent("XF003", sources)


# ----------------------------------------------------------------------
# XF004 no_grad reachability
# ----------------------------------------------------------------------
class TestNoGradReachability:
    def test_unguarded_allocation_two_hops_fires(self):
        # predict -> featurize -> embed: the Tensor allocation is two
        # calls below the inference entry, and no frame establishes
        # no_grad — only the call graph sees this.
        findings = fires(
            "XF004",
            {
                "src/pkg/infer.py": """
                from pkg.tape import Tensor

                def predict(x):
                    return featurize(x)

                def featurize(x):
                    return embed(x)

                def embed(x):
                    return Tensor(x)
                """,
                "src/pkg/tape.py": """
                class Tensor:
                    def __init__(self, data):
                        self.data = data
                """,
            },
        )
        assert any("call path" in f.message for f in findings)

    def test_guarded_entry_silent(self):
        silent(
            "XF004",
            {
                "src/pkg/infer.py": """
                from pkg.tape import Tensor, no_grad

                def predict(x):
                    with no_grad():
                        return embed(x)

                def embed(x):
                    return Tensor(x)
                """,
                "src/pkg/tape.py": """
                class Tensor:
                    def __init__(self, data):
                        self.data = data

                def no_grad():
                    pass
                """,
            },
        )

    def test_no_grad_decorated_callee_silent(self):
        silent(
            "XF004",
            {
                "src/pkg/infer.py": """
                from pkg.tape import Tensor, no_grad

                def predict(x):
                    return embed(x)

                @no_grad
                def embed(x):
                    return Tensor(x)
                """,
                "src/pkg/tape.py": """
                class Tensor:
                    def __init__(self, data):
                        self.data = data

                def no_grad(fn):
                    return fn
                """,
            },
        )

    def test_mode_aware_function_exempt(self):
        silent(
            "XF004",
            {
                "src/pkg/infer.py": """
                from pkg.tape import Tensor, grad_enabled

                def predict(x):
                    if not grad_enabled():
                        return x
                    return Tensor(x)
                """,
                "src/pkg/tape.py": """
                class Tensor:
                    def __init__(self, data):
                        self.data = data

                def grad_enabled():
                    return True
                """,
            },
        )

    def test_mechanism_module_exempt(self):
        # The module defining Tensor IS the tape; its own infer-named
        # helpers may allocate freely.
        silent(
            "XF004",
            {
                "src/pkg/tape.py": """
                class Tensor:
                    def __init__(self, data):
                        self.data = data

                def tape_infer(x):
                    return Tensor(x)
                """
            },
        )


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestCache:
    def _write_tree(self, root: Path, body: str) -> None:
        (root / "src" / "pkg").mkdir(parents=True, exist_ok=True)
        (root / "src" / "pkg" / "m.py").write_text(textwrap.dedent(body))

    def test_warm_load_hits_and_edit_invalidates(self, tmp_path):
        self._write_tree(tmp_path, "def f():\n    return 1\n")
        _, from_cache = load_symbol_graph(tmp_path, ["src"])
        assert not from_cache
        sg, from_cache = load_symbol_graph(tmp_path, ["src"])
        assert from_cache
        assert "pkg.m:f" in sg.table.functions
        # Any edit changes the manifest digest: cold rebuild, new symbol.
        before = manifest_digest(tmp_path, ["src"])
        self._write_tree(tmp_path, "def g():\n    return 2\n")
        assert manifest_digest(tmp_path, ["src"]) != before
        sg, from_cache = load_symbol_graph(tmp_path, ["src"])
        assert not from_cache
        assert "pkg.m:g" in sg.table.functions
        assert "pkg.m:f" not in sg.table.functions

    def test_corrupt_cache_falls_back_to_build(self, tmp_path):
        self._write_tree(tmp_path, "def f():\n    return 1\n")
        load_symbol_graph(tmp_path, ["src"])
        cache_dir = tmp_path / ".xatuflow-cache"
        for blob in cache_dir.glob("*.pkl"):
            blob.write_bytes(b"not a pickle")
        sg, from_cache = load_symbol_graph(tmp_path, ["src"])
        assert not from_cache
        assert "pkg.m:f" in sg.table.functions


# ----------------------------------------------------------------------
# the repo itself must deep-lint clean
# ----------------------------------------------------------------------
class TestRepoIsDeepClean:
    def test_src_deep_lints_clean_against_baseline(self):
        from repro.analysis import Baseline

        sg, _ = load_symbol_graph(REPO_ROOT, ["src"], use_cache=False)
        findings = []
        for checker in all_flow_checkers():
            findings.extend(checker.run(sg))
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        new, _suppressed = baseline.partition(findings)
        assert new == [], "new deep findings:\n" + "\n".join(
            f.render() for f in new
        )
        flow_ids = set(ALL_FLOW_RULE_IDS)
        stale = [
            e
            for e in baseline.unused_entries(findings)
            if e.rule in flow_ids
        ]
        assert stale == [], "stale deep baseline entries: " + ", ".join(
            f"{e.path}:{e.rule}" for e in stale
        )

    def test_cli_lint_deep_strict_exits_clean(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--deep", "--strict", "--no-cache"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_cli_lint_deep_sarif_is_valid_json(self, monkeypatch, capsys):
        import json

        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--deep", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(ALL_FLOW_RULE_IDS) <= ids
        # baselined findings ride along as suppressed results
        assert all(
            "suppressions" in r for r in run["results"]
        ), "clean repo: every SARIF result should be a baselined suppression"


# ----------------------------------------------------------------------
# baseline stamp
# ----------------------------------------------------------------------
class TestBaselineStamp:
    def test_save_stamps_analyzer_and_rules(self, tmp_path):
        import json

        from repro.analysis import ANALYZER_VERSION, Baseline

        path = tmp_path / "baseline.json"
        Baseline().save(path, rules=["XL001", "XF001"])
        payload = json.loads(path.read_text())
        assert payload["analyzer"] == ANALYZER_VERSION
        assert payload["rules"] == ["XF001", "XL001"]

    def test_old_unstamped_baseline_warns(self, tmp_path):
        from repro.analysis import Baseline

        path = tmp_path / "baseline.json"
        path.write_text('{"version": 1, "entries": []}')
        baseline = Baseline.load(path)
        warnings = baseline.stamp_warnings(["XL001"])
        assert warnings and "stamp" in warnings[0]

    def test_outdated_rule_inventory_warns(self, tmp_path):
        import json

        from repro.analysis import ANALYZER_VERSION, Baseline

        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "analyzer": ANALYZER_VERSION,
                    "rules": ["XL001"],
                    "entries": [],
                }
            )
        )
        baseline = Baseline.load(path)
        warnings = baseline.stamp_warnings(["XL001", "XF009"])
        assert warnings and "XF009" in warnings[0]

    def test_current_stamp_is_quiet(self, tmp_path):
        from repro.analysis import Baseline

        path = tmp_path / "baseline.json"
        Baseline().save(path, rules=["XL001"])
        assert Baseline.load(path).stamp_warnings(["XL001"]) == []
