"""Cross-checks of the nn substrate against independent reference math.

The LSTM layer is validated against a hand-rolled, loop-only numpy
implementation of the standard LSTM equations, and the survival loss
against direct probability computations — independent re-derivations, not
the library's own code paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LSTM, Tensor, hazard_to_survival, safe_survival_loss


def reference_lstm(x, w_x, w_h, bias, hidden_size):
    """Textbook LSTM forward, one scalar op at a time."""

    def sigmoid(v):
        return 1.0 / (1.0 + np.exp(-v))

    batch, steps, _features = x.shape
    h = np.zeros((batch, hidden_size))
    c = np.zeros((batch, hidden_size))
    outputs = np.zeros((batch, steps, hidden_size))
    for t in range(steps):
        gates = x[:, t, :] @ w_x + h @ w_h + bias
        i = sigmoid(gates[:, 0:hidden_size])
        f = sigmoid(gates[:, hidden_size : 2 * hidden_size])
        g = np.tanh(gates[:, 2 * hidden_size : 3 * hidden_size])
        o = sigmoid(gates[:, 3 * hidden_size : 4 * hidden_size])
        c = f * c + i * g
        h = o * np.tanh(c)
        outputs[:, t, :] = h
    return outputs


class TestLstmAgainstReference:
    @settings(max_examples=10, deadline=None)
    @given(
        batch=st.integers(1, 3),
        steps=st.integers(1, 6),
        features=st.integers(1, 4),
        hidden=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_forward_matches(self, batch, steps, features, hidden, seed):
        rng = np.random.default_rng(seed)
        lstm = LSTM(features, hidden, rng=rng)
        x = rng.normal(size=(batch, steps, features))
        ours, _state = lstm(Tensor(x))
        reference = reference_lstm(
            x, lstm.w_x.numpy(), lstm.w_h.numpy(), lstm.bias.numpy(), hidden
        )
        assert ours.numpy() == pytest.approx(reference, abs=1e-10)

    def test_long_sequence_stable(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        x = rng.normal(size=(1, 500, 3))
        out, _ = lstm(Tensor(x))
        assert np.isfinite(out.numpy()).all()


class TestSurvivalAgainstDirectProbability:
    @settings(max_examples=25, deadline=None)
    @given(steps=st.integers(1, 10), seed=st.integers(0, 1000))
    def test_survival_is_product_of_step_survivals(self, steps, seed):
        """S_t factorizes: exp(-sum h) == prod exp(-h)."""
        rng = np.random.default_rng(seed)
        h = rng.uniform(0, 2, size=(1, steps))
        s = hazard_to_survival(Tensor(h)).numpy()[0]
        direct = np.cumprod(np.exp(-h[0]))
        assert s == pytest.approx(direct)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_loss_equals_bernoulli_nll_of_event(self, seed):
        """For one series, the SAFE loss is the NLL of the event indicator
        under probability 1 - S_{t_i}."""
        rng = np.random.default_rng(seed)
        steps = int(rng.integers(2, 8))
        label = int(rng.integers(0, steps))
        is_attack = bool(rng.integers(0, 2))
        h = rng.uniform(0.05, 1.0, size=(1, steps))
        s_label = float(np.exp(-h[0, : label + 1].sum()))
        p_event = 1.0 - s_label
        expected = -np.log(p_event) if is_attack else -np.log(s_label)
        loss = safe_survival_loss(
            Tensor(h), np.array([float(is_attack)]), np.array([label])
        )
        assert loss.item() == pytest.approx(expected)


class TestPipelineGuards:
    def test_quiet_scenario_raises_clear_error(self):
        """A trace whose CDet finds nothing fails fast with guidance."""
        from repro.core import PipelineConfig, TrainConfig, XatuPipeline
        from repro.detect import NetScoutDetector
        from repro.synth import ScenarioConfig
        from tests.conftest import small_model_config

        config = PipelineConfig(
            scenario=ScenarioConfig(
                total_days=4, minutes_per_day=60, prep_days=0.5,
                n_customers=3, n_botnets=1, botnet_size=30, seed=1,
            ),
            model=small_model_config(),
            train=TrainConfig(epochs=1),
        )
        # An absurdly conservative detector produces no labels.
        pipeline = XatuPipeline(config, cdet=NetScoutDetector(sustain=10_000))
        with pytest.raises(RuntimeError, match="no labeled alerts"):
            pipeline.run()
