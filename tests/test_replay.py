"""Tests for the trace → live-flow replay bridge."""

import numpy as np
import pytest

from repro.synth import TraceReplayer


@pytest.fixture(scope="module")
def replayer(trace):
    return trace, TraceReplayer(trace)


class TestReplay:
    def test_bytes_preserved_per_customer_minute(self, replayer):
        trace, rp = replayer
        minute = trace.horizon // 2
        flows = rp.minute_flows(minute)
        by_customer: dict[int, int] = {}
        for flow in flows:
            by_customer[flow.dst_addr] = by_customer.get(flow.dst_addr, 0) + flow.bytes_
        for customer in trace.world.customers:
            cell = trace.matrix.cell(customer.customer_id, minute)
            if cell is None:
                assert customer.address not in by_customer
            else:
                replayed = by_customer.get(customer.address, 0)
                assert replayed == pytest.approx(cell.total_bytes, rel=0.05)

    def test_sources_subset_of_cell_sources(self, replayer):
        trace, rp = replayer
        minute = trace.horizon // 3
        for flow in rp.minute_flows(minute):
            customer = trace.world.customer_by_address(flow.dst_addr)
            cell = trace.matrix.cell(customer.customer_id, minute)
            assert flow.src_addr in cell._sources

    def test_timestamps_match_minute(self, replayer):
        _trace, rp = replayer
        for flow in rp.minute_flows(10):
            assert flow.timestamp == 10

    def test_replay_iterator_covers_range(self, replayer):
        trace, rp = replayer
        minutes = [m for m, _flows in rp.replay(5, 10)]
        assert minutes == [5, 6, 7, 8, 9]

    def test_bad_range_rejected(self, replayer):
        trace, rp = replayer
        with pytest.raises(ValueError):
            list(rp.replay(-1, 5))
        with pytest.raises(ValueError):
            list(rp.replay(0, trace.horizon + 1))

    def test_attack_minute_dominated_by_attack_protocol(self, replayer):
        """During a flood, the replayed flows carry the attack protocol."""
        trace, rp = replayer
        event = max(trace.events, key=lambda e: e.anomalous_bytes.max())
        peak = event.onset + int(np.argmax(event.anomalous_bytes))
        flows = [
            f for f in rp.minute_flows(peak)
            if f.dst_addr == event.customer_address
        ]
        assert flows
        proto_bytes: dict[int, int] = {}
        for f in flows:
            proto_bytes[f.protocol] = proto_bytes.get(f.protocol, 0) + f.bytes_
        dominant = max(proto_bytes, key=proto_bytes.get)
        assert dominant == event.signature.protocol

    def test_online_detector_consumes_replay(self, replayer):
        """End-to-end: replayed flows drive OnlineXatu without errors."""
        from repro.core import OnlineXatu, XatuModel
        from repro.signals import FeatureScaler
        from tests.conftest import small_model_config

        trace, rp = replayer
        scaler = FeatureScaler()
        scaler.mean_ = np.zeros(273)
        scaler.std_ = np.ones(273)
        blocklist = set()
        for botnet in trace.world.botnets:
            blocklist.update(int(a) for a in botnet.blocklisted_members)
        online = OnlineXatu(
            model=XatuModel(small_model_config()),
            scaler=scaler,
            threshold=0.5,
            customer_of={c.address: c.customer_id for c in trace.world.customers},
            blocklist=blocklist,
            route_table=trace.world.route_table,
        )
        lo = trace.horizon // 2
        for minute, flows in rp.replay(lo, lo + 5):
            online.step(minute, flows)
        assert online.current_minute == lo + 4
        assert len(online.matrix) > 0
