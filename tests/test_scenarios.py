"""The scenario matrix subsystem (repro.scenarios).

Three layers, cheapest first:

* **catalog** — the registry's shape contracts: the acceptance floor of
  ≥ 10 scenarios (6 paper types + ≥ 4 new families + drift), unique
  names, the CI subset, and the drift band's zero-FP Xatu budgets;
* **synth knobs** — the new generator families behave as specified:
  pinned attack types, carpet bombing's many simultaneous low-rate
  victims, pulse-wave off-phases, multi-vector signature chains, prep
  damping, benign drift, and single-seed reproducibility;
* **matrix** — the evaluation semantics (event matching, prep-window
  classification, diversion dedup of false alerts), the report gates
  (budgets, compare-vs-baseline), and a tiny CDet-only end-to-end run
  that must be deterministic.

The carpet-bombing truth records are seed-locked in
``tests/fixtures/carpet_bombing_truth.json`` so generator refactors
can't silently change the flagship adversarial workload.  To re-record
after an *intentional* generator change::

    PYTHONPATH=src:. python -c \
        "from tests.test_scenarios import record_carpet_fixture; \
         record_carpet_fixture()"
"""

import copy
import json
from pathlib import Path

import pytest

from repro.scenarios import (
    CI_SCENARIOS,
    DETECTOR_LANES,
    MatrixConfig,
    all_specs,
    budget_failures,
    compare_reports,
    get_spec,
    load_report,
    render_report,
    run_matrix,
    scenario_names,
    write_report,
)
from repro.scenarios.matrix import _evaluate_lane, _match_event
from repro.synth import (
    ATTACK_FAMILIES,
    BENIGN_DRIFTS,
    AttackType,
    TraceGenerator,
)

FIXTURE = Path(__file__).parent / "fixtures" / "carpet_bombing_truth.json"


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_acceptance_floor(self):
        specs = all_specs()
        assert len(specs) >= 10
        families = {s.family for s in specs}
        assert families == {"paper", "adversarial", "drift", "scale"}
        assert sum(s.family == "paper" for s in specs) == 6
        assert sum(s.family == "adversarial" for s in specs) >= 4
        assert sum(s.family == "drift" for s in specs) >= 1
        assert sum(s.family == "scale" for s in specs) >= 1

    def test_names_unique_and_resolvable(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        for name in names:
            assert get_spec(name).name == name
        with pytest.raises(KeyError, match="unknown scenario"):
            get_spec("no-such-scenario")

    def test_ci_subset_is_registered_and_covers_bands(self):
        assert set(CI_SCENARIOS) <= set(scenario_names())
        assert {get_spec(n).family for n in CI_SCENARIOS} == {
            "paper", "adversarial", "drift",
        }

    def test_drift_scenarios_are_attack_free_with_zero_xatu_budget(self):
        drift = [s for s in all_specs() if s.family == "drift"]
        assert drift
        for spec in drift:
            assert not spec.expect_alerts
            assert spec.config.attack_free
            assert spec.config.benign_drift in BENIGN_DRIFTS
            # the contract: Xatu holds zero false alerts under drift,
            # while the CDets get explicit (measured) budgets
            assert spec.fp_budget["xatu"] == 0
            assert spec.fp_budget["xatu_serve"] == 0
            assert spec.fp_budget["netscout"] > 0
            assert spec.fp_budget["fastnetmon"] > 0

    def test_adversarial_band_covers_the_new_families(self):
        adversarial = [s for s in all_specs() if s.family == "adversarial"]
        families = {s.config.attack_family for s in adversarial}
        assert {"carpet_bombing", "pulse_wave", "multi_vector"} <= families
        assert set(families) <= set(ATTACK_FAMILIES)
        dampings = {s.config.prep_damping for s in adversarial}
        assert any(d > 0 for d in dampings)  # adaptive-prep present


# ----------------------------------------------------------------------
# synth knobs behind the new families
# ----------------------------------------------------------------------
def _generate(name: str):
    return TraceGenerator(get_spec(name).config).materialize()


class TestNewFamilies:
    def test_fixed_attack_type_pins_every_event(self):
        trace = _generate("paper-tcp-syn")
        assert trace.events
        assert {e.attack_type for e in trace.events} == {AttackType.TCP_SYN}

    def test_carpet_bombing_is_simultaneous_and_low_rate(self):
        trace = _generate("carpet-bombing")
        spec = get_spec("carpet-bombing")
        # one wave per round, each spread over every customer of the prefix
        victims = {e.customer_id for e in trace.events}
        assert len(victims) == spec.config.n_customers
        waves: dict[int, list] = {}
        for event in trace.events:
            waves.setdefault(event.onset // 60, []).append(event)
        for wave in waves.values():
            onsets = [e.onset for e in wave]
            assert max(onsets) - min(onsets) <= 5  # staggered by minutes
            assert len({e.customer_id for e in wave}) == len(wave)
        # per-victim rate stays under the 2x-profile volumetric threshold
        base_of = {
            c.customer_id: c.base_rate_bytes for c in trace.world.customers
        }
        for event in trace.events:
            assert event.peak_bytes <= 2.0 * base_of[event.customer_id]

    def test_pulse_wave_has_quiet_off_phases(self):
        trace = _generate("pulse-wave")
        config = get_spec("pulse-wave").config
        assert trace.events
        import numpy as np

        period = config.pulse_period
        on = int(config.pulse_duty * period)
        for event in trace.events:
            series = event.anomalous_bytes
            phase = np.arange(len(series)) % period
            on_minutes = series[phase < on]
            off_minutes = series[phase >= on]
            assert (on_minutes > 0).all()
            # off-phases carry at most residual spillover — an order of
            # magnitude below the flood, so sustain logic sees a gap
            assert np.median(off_minutes) < 0.1 * np.median(on_minutes)

    def test_multi_vector_chains_signatures(self):
        trace = _generate("multi-vector")
        assert trace.events
        for event in trace.events:
            assert event.attack_type == AttackType.UDP_FLOOD  # first vector
            assert len(event.extra_signatures) == 2
            # the chain spans both transports: UDP flood plus two distinct
            # TCP vectors (SYN, ACK) with their own diversion signatures
            shapes = {
                (s.protocol, s.tcp_flags)
                for s in (event.signature, *event.extra_signatures)
            }
            assert len(shapes) == 3
            assert {proto for proto, _flags in shapes} == {6, 17}

    def test_prep_damping_thins_the_preparation_phase(self):
        loud = _generate("paper-udp-flood")
        quiet = _generate("adaptive-prep-85")
        # both scenarios schedule real preps...
        assert any(not p.aborted for p in loud.preps)
        assert any(not p.aborted for p in quiet.preps)
        # ...but the damped attacker emits far fewer probe flows overall
        assert quiet.total_flows < loud.total_flows

    def test_attack_free_drift_has_no_events(self):
        trace = _generate("drift-flash-crowd")
        assert trace.events == []
        assert trace.preps == []
        assert trace.total_flows > 0

    def test_single_seed_reproducibility(self):
        a = _generate("carpet-bombing")
        b = _generate("carpet-bombing")
        assert [e.onset for e in a.events] == [e.onset for e in b.events]
        assert a.total_flows == b.total_flows
        assert a.sampled_flows == b.sampled_flows


# ----------------------------------------------------------------------
# seed-locked carpet-bombing truth records
# ----------------------------------------------------------------------
def _carpet_truth() -> dict:
    from dataclasses import asdict

    trace = _generate("carpet-bombing")
    return {
        "scenario": "carpet-bombing",
        "seed": trace.config.seed,
        "horizon": trace.horizon,
        "total_flows": trace.total_flows,
        "sampled_flows": trace.sampled_flows,
        "events": [
            {
                "event_id": e.event_id,
                "customer_id": e.customer_id,
                "customer_address": e.customer_address,
                "attack_type": e.attack_type.value,
                "onset": e.onset,
                "end": e.end,
                "peak_bytes": round(e.peak_bytes, 6),
                "campaign_id": e.campaign_id,
                "botnet_id": e.botnet_id,
                "n_attackers": len(e.attackers),
                "signature": asdict(e.signature),
            }
            for e in trace.events
        ],
        "preps": [
            {
                "customer_id": p.customer_id,
                "start": p.start,
                "end": p.end,
                "aborted": p.aborted,
                "spoofed_fraction": round(p.spoofed_fraction, 6),
            }
            for p in trace.preps
        ],
    }


def record_carpet_fixture() -> Path:
    """Re-record the fixture after an intentional generator change."""
    FIXTURE.write_text(json.dumps(_carpet_truth(), indent=2) + "\n")
    return FIXTURE


class TestCarpetBombingFixture:
    def test_truth_records_match_the_committed_fixture(self):
        committed = json.loads(FIXTURE.read_text())
        assert _carpet_truth() == committed, (
            "carpet-bombing truth records drifted from the committed "
            "fixture; if the generator change is intentional, re-record "
            "via tests.test_scenarios.record_carpet_fixture()"
        )


# ----------------------------------------------------------------------
# matrix evaluation semantics (no training required)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def drift_trace():
    return _generate("drift-diurnal-shift")


@pytest.fixture(scope="module")
def carpet_trace():
    return _generate("carpet-bombing")


class TestEvaluationSemantics:
    def test_event_matching_honours_margins(self, carpet_trace):
        config = MatrixConfig(detectors=("netscout",))
        event = carpet_trace.events[0]
        cid = event.customer_id
        inside = _match_event(carpet_trace, cid, event.onset, config)
        early = _match_event(
            carpet_trace, cid, event.onset - config.early_margin, config
        )
        too_early = _match_event(
            carpet_trace, cid, event.onset - config.early_margin - 60, config
        )
        assert inside is not None and early is not None
        assert inside.event_id == event.event_id
        assert too_early is None or too_early.event_id != event.event_id

    def test_false_alerts_dedup_by_diversion(self, drift_trace):
        config = MatrixConfig(detectors=("netscout",))
        # three alerts inside one 10-minute diversion => one false alert
        alerts = [(0, 100), (0, 104), (0, 108)]
        metrics, _ = _evaluate_lane(drift_trace, alerts, config)
        assert metrics["false_alerts"] == 1
        # a fourth alert past the diversion opens a second incident
        metrics, _ = _evaluate_lane(drift_trace, alerts + [(0, 140)], config)
        assert metrics["false_alerts"] == 2

    def test_prep_window_alerts_are_not_false(self, carpet_trace):
        config = MatrixConfig(detectors=("netscout",))
        prep = next(p for p in carpet_trace.preps if not p.aborted)
        alerts = [(prep.customer_id, prep.start)]
        metrics, first = _evaluate_lane(carpet_trace, alerts, config)
        # the alert is either early-matched to the event or classed as a
        # prep alert — never a benign false alarm
        assert metrics["false_alerts"] == 0
        assert metrics["prep_alerts"] + len(first) == 1

    def test_detection_delay_is_signed(self, carpet_trace):
        config = MatrixConfig(detectors=("netscout",))
        event = carpet_trace.events[0]
        alerts = [(event.customer_id, event.onset - 5)]
        metrics, first = _evaluate_lane(carpet_trace, alerts, config)
        assert first == {event.event_id: event.onset - 5}
        assert metrics["median_delay_minutes"] == -5.0


# ----------------------------------------------------------------------
# report gates + a tiny CDet-only end-to-end run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cdet_report():
    config = MatrixConfig(detectors=("netscout", "fastnetmon"))
    return run_matrix(["drift-diurnal-shift"], config)


class TestReportAndGates:
    def test_config_rejects_unknown_lane(self):
        with pytest.raises(ValueError, match="unknown detector lane"):
            MatrixConfig(detectors=("netscout", "snort"))
        assert MatrixConfig().detectors == DETECTOR_LANES

    def test_cdet_only_run_is_deterministic(self, cdet_report):
        config = MatrixConfig(detectors=("netscout", "fastnetmon"))
        again = run_matrix(["drift-diurnal-shift"], config)
        assert json.dumps(cdet_report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )
        assert cdet_report["train"] is None  # no model was trained

    def test_report_round_trip_and_version_gate(self, cdet_report, tmp_path):
        path = write_report(cdet_report, tmp_path)
        assert load_report(path) == cdet_report
        bad = dict(cdet_report, format_version=99)
        (tmp_path / "SCENARIOS.json").write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="unsupported"):
            load_report(tmp_path / "SCENARIOS.json")

    def test_budgets_hold_on_the_measured_run(self, cdet_report):
        assert budget_failures(cdet_report) == []
        assert "drift-diurnal-shift" in render_report(cdet_report)

    def test_budget_gate_fires_on_violation(self, cdet_report):
        inflated = copy.deepcopy(cdet_report)
        scenario = inflated["scenarios"]["drift-diurnal-shift"]
        scenario["results"]["netscout"]["false_alerts"] = 10_000
        failures = budget_failures(inflated)
        assert failures and "netscout" in failures[0]

    def test_compare_passes_against_itself(self, cdet_report):
        warnings, failures = compare_reports(cdet_report, cdet_report)
        assert failures == []
        assert warnings == []

    def test_compare_fails_on_detection_regression(self, cdet_report):
        regressed = copy.deepcopy(cdet_report)
        result = regressed["scenarios"]["drift-diurnal-shift"]["results"]
        result["netscout"]["false_alerts_per_kcm"] += 5.0
        _warnings, failures = compare_reports(regressed, cdet_report)
        assert any("false-alert rate" in f for f in failures)

    def test_compare_skips_pairs_missing_from_baseline(self, cdet_report):
        baseline = copy.deepcopy(cdet_report)
        del baseline["scenarios"]["drift-diurnal-shift"]
        warnings, failures = compare_reports(cdet_report, baseline)
        assert failures == []
        assert any("not in baseline" in w for w in warnings)
