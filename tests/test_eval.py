"""Tests for the evaluation harness: censuses, naive-early, tables, attribution."""

import numpy as np
import pytest

from repro.eval import (
    attacker_activity_by_day,
    clustering_timeline,
    format_value,
    input_gradients,
    prep_signal_census,
    render_series,
    render_table,
    run_naive_early,
    split_table,
    transition_matrix,
)
from repro.synth import AttackType


class TestPrepSignalCensus:
    def test_fractions_in_unit_interval(self, trace):
        census = prep_signal_census(trace)
        assert census
        for row in census:
            assert 0 <= row.blocklisted_fraction <= 1
            assert 0 <= row.previous_attacker_fraction <= 1
            assert 0 <= row.spoofed_fraction <= 1

    def test_blocklist_signal_present(self, trace):
        census = prep_signal_census(trace)
        assert max(r.blocklisted_fraction for r in census) > 0

    def test_repeat_attacks_carry_previous_attackers(self, trace):
        """Later attacks on a repeat-attacked customer show the A2 overlap."""
        census = prep_signal_census(trace)
        assert any(r.previous_attacker_fraction > 0.1 for r in census)


class TestTransitionMatrix:
    def test_rows_are_distributions(self, trace):
        matrix, types, pairs = transition_matrix(trace)
        assert pairs > 0
        for row in matrix:
            if row.sum() > 0:
                assert row.sum() == pytest.approx(1.0)

    def test_same_type_pairs_dominate(self, trace):
        """Fig 4b: consecutive attacks mostly repeat the same type."""
        from repro.eval import same_type_share

        assert same_type_share(trace) > 0.5


class TestActivityByDay:
    def test_activity_increases_toward_attack(self, trace):
        activity = attacker_activity_by_day(trace, days_back=2)
        # index 0 = day -1 (closest), last index = farthest.
        block = activity["blocklist"]
        assert block.shape == (2,)
        assert block[0] >= block[-1] - 0.15  # closer day at least as active

    def test_all_signal_keys_present(self, trace):
        activity = attacker_activity_by_day(trace, days_back=1)
        assert set(activity) == {"blocklist", "previous", "spoofed"}


class TestClusteringTimeline:
    def test_offsets_returned(self, trace):
        timeline = clustering_timeline(trace, minutes_before=[10, 0])
        assert set(timeline) == {10, 0}
        for values in timeline.values():
            assert values.shape == (3,)
            assert (values >= 0).all()


class TestSplitTable:
    def test_counts_sum_to_events(self, trace):
        table = split_table(trace)
        total = sum(sum(row.values()) for row in table.values())
        assert total == len(trace.events)

    def test_chronology_respected(self, trace):
        table = split_table(trace, (0.0, 0.0, 1.0))
        for row in table.values():
            assert row["train"] == 0 and row["val"] == 0


class TestNaiveEarly:
    def test_effectiveness_monotone_in_earliness(self, trace):
        points = run_naive_early(trace, [0, 5, 10])
        overall = [p for p in points if p.duration_class == "overall"]
        eff = [p.effectiveness_median for p in overall]
        assert eff == sorted(eff)

    def test_overhead_monotone_in_earliness(self, trace):
        points = run_naive_early(trace, [0, 5, 10])
        overall = [p for p in points if p.duration_class == "overall"]
        ovh = [p.overhead_mean for p in overall]
        assert ovh[-1] >= ovh[0]

    def test_all_duration_classes_reported(self, trace):
        points = run_naive_early(trace, [0])
        classes = {p.duration_class for p in points}
        assert classes == {"short", "medium", "long", "overall"}


class TestAttribution:
    def test_gradients_shape_and_signal(self, pipeline_result):
        pipeline, _result = pipeline_result
        # Reuse the fixture's trained model through a fresh mini-setup.
        from repro.core import XatuModel
        from repro.signals import FeatureExtractor, FeatureScaler
        from tests.conftest import small_model_config

        cfg = small_model_config()
        model = XatuModel(cfg)
        trace = pipeline.trace
        fx = FeatureExtractor(trace)
        event = trace.events[-1]
        start = event.onset - cfg.lookback_minutes
        if start < 0:
            pytest.skip("event too early for a full window")
        raw = fx.window(event.customer_id, start, event.onset)
        scaled = FeatureScaler().fit([raw]).transform(raw)
        attribution = input_gradients(model, scaled)
        assert attribution.magnitude.shape == (cfg.lookback_minutes, 6)
        assert (attribution.magnitude >= 0).all()
        assert attribution.groups == ["V", "A1", "A2", "A3", "A4", "A5"]
        assert len(attribution.group_series("A2")) == cfg.lookback_minutes
        assert attribution.dominant_group(0) in attribution.groups


class TestTables:
    def test_format_value(self):
        assert format_value(0.5) == "0.5"
        assert format_value(1234.5) == "1.23e+03"
        assert format_value(0.0001234) == "0.000123"
        assert format_value(True) == "True"
        assert format_value("x") == "x"
        assert format_value(float("nan")) == "nan"

    def test_render_table_alignment(self):
        out = render_table(["a", "metric"], [[1, 0.5], [22, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "metric" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("x", [1, 2], {"y": [0.1, 0.2], "z": [3, 4]})
        assert "x" in out and "y" in out and "z" in out
        assert len(out.splitlines()) == 4
