"""Final breadth coverage: world edge cases, CLI compare, misc invariants."""

import numpy as np
import pytest

from repro.synth import IspWorld, WorldConfig


class TestWorldEdgeCases:
    def test_unlisted_botnets_exist_at_high_fraction(self):
        world = IspWorld(WorldConfig(
            n_customers=4, n_botnets=8, botnet_size=50,
            unlisted_botnet_fraction=0.9, seed=3,
        ))
        unlisted = [b for b in world.botnets if len(b.blocklisted_members) == 0]
        assert unlisted, "most botnets should be unlisted at 0.9 fraction"

    def test_zero_unlisted_fraction_lists_every_botnet(self):
        world = IspWorld(WorldConfig(
            n_customers=4, n_botnets=5, botnet_size=50,
            unlisted_botnet_fraction=0.0, seed=3,
        ))
        assert all(len(b.blocklisted_members) > 0 for b in world.botnets)

    def test_world_deterministic_given_seed(self):
        a = IspWorld(WorldConfig(seed=11))
        b = IspWorld(WorldConfig(seed=11))
        from repro.synth import world_checksum

        assert world_checksum(a) == world_checksum(b)

    def test_customer_addresses_unique(self):
        world = IspWorld(WorldConfig(n_customers=30, seed=1))
        addresses = [c.address for c in world.customers]
        assert len(set(addresses)) == len(addresses)

    def test_botnet_blocks_disjoint(self):
        world = IspWorld(WorldConfig(n_botnets=5, botnet_size=100, seed=1))
        seen: set[int] = set()
        for botnet in world.botnets:
            members = set(int(a) for a in botnet.members)
            assert not (members & seen)
            seen |= members


@pytest.mark.slow
class TestCliCompare:
    def test_compare_command_prints_all_systems(self, capsys):
        from repro.cli import main

        rc = main([
            "compare", "--days", "12", "--customers", "6",
            "--epochs", "1", "--overhead-bound", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for system in ("netscout", "fastnetmon", "rf", "xatu"):
            assert system in out


class TestMiscInvariants:
    def test_attack_event_ids_stable_through_sorting(self, trace):
        """event_id is the index into trace.events everywhere."""
        for i, event in enumerate(trace.events):
            assert event.event_id == i

    def test_trace_events_within_horizon(self, trace):
        for event in trace.events:
            assert 0 <= event.onset < event.end <= trace.horizon

    def test_prep_windows_precede_or_abort(self, trace):
        for prep in trace.preps:
            assert prep.start < prep.end <= trace.horizon

    def test_signature_protocol_matches_attack_type(self, trace):
        from repro.netflow import Protocol
        from repro.synth import AttackType

        proto_of = {
            AttackType.UDP_FLOOD: Protocol.UDP,
            AttackType.DNS_AMPLIFICATION: Protocol.UDP,
            AttackType.TCP_ACK: Protocol.TCP,
            AttackType.TCP_SYN: Protocol.TCP,
            AttackType.TCP_RST: Protocol.TCP,
            AttackType.ICMP_FLOOD: Protocol.ICMP,
        }
        for event in trace.events:
            assert event.signature.protocol == int(proto_of[event.attack_type])

    def test_feature_extractor_window_deterministic(self, trace):
        from repro.signals import FeatureExtractor

        fx = FeatureExtractor(trace)
        event = trace.events[0]
        lo = max(0, event.onset - 60)
        a = fx.window(event.customer_id, lo, event.onset)
        b = fx.window(event.customer_id, lo, event.onset)
        assert a == pytest.approx(b)
