"""Additional edge-case coverage for the autograd engine."""

import numpy as np
import pytest

from repro.nn import Tensor, gradcheck, no_grad


class TestMatmulVariants:
    def test_vector_vector_dot(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        out = a @ b
        assert out.numpy() == pytest.approx(a.numpy() @ b.numpy())
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = rng.normal(size=4)
        out = a @ Tensor(b)
        assert out.shape == (3,)
        gradcheck(lambda a: (a @ Tensor(b)).sum(), [a])

    def test_chained_matmul_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        c = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda a, b, c: ((a @ b @ c) ** 2).sum(), [a, b, c])


class TestReuseAndGraphs:
    def test_tensor_reused_in_two_branches(self):
        """Gradient accumulates correctly across graph branches."""
        a = Tensor(3.0, requires_grad=True)
        out = a * a + a * 2.0  # d/da = 2a + 2 = 8
        out.backward()
        assert a.grad == pytest.approx(8.0)

    def test_diamond_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        gradcheck(lambda a: ((a.sigmoid() * a.tanh()).sum()), [a])

    def test_backward_twice_on_separate_graphs(self):
        a = Tensor(2.0, requires_grad=True)
        (a * 3.0).backward()
        (a * 4.0).backward()
        assert a.grad == pytest.approx(7.0)

    def test_constant_branches_skipped(self):
        a = Tensor(2.0, requires_grad=True)
        constant = Tensor(5.0)  # no grad
        out = a * constant
        out.backward()
        assert a.grad == pytest.approx(5.0)
        assert constant.grad is None

    def test_deep_chain_no_recursion_error(self):
        """The iterative topo-sort handles 5000-op chains."""
        a = Tensor(1.0, requires_grad=True)
        out = a
        for _ in range(5000):
            out = out * 1.0001
        out.backward()
        assert a.grad is not None and np.isfinite(a.grad)


class TestNoGradInterop:
    def test_mixed_graph_segments(self):
        a = Tensor(2.0, requires_grad=True)
        with no_grad():
            frozen = a * 3.0  # constant 6, not on tape
        out = a * frozen
        out.backward()
        # d(a * 6)/da = 6 (frozen treated as constant)
        assert a.grad == pytest.approx(6.0)

    def test_nested_no_grad(self):
        from repro.nn.autograd import is_grad_enabled

        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestShapesAndBroadcast:
    def test_scalar_broadcast_against_matrix(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        assert s.grad == pytest.approx(a.numpy().sum())

    def test_keepdims_sum_then_divide(self, rng):
        """Softmax-like normalization composes correctly."""
        a = Tensor(np.abs(rng.normal(size=(2, 4))) + 0.1, requires_grad=True)

        def normalize(a):
            total = a.sum(axis=1, keepdims=True)
            return ((a / total) ** 2).sum()

        gradcheck(normalize, [a])

    def test_transpose_default_reverses_all_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        assert a.T.shape == (4, 3, 2)

    def test_stack_middle_axis(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = Tensor.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        gradcheck(lambda a, b: (Tensor.stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_cumsum_axis0(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda a: (a.cumsum(axis=0) ** 2).sum(), [a])
