"""Differential proof that the batched inference lane is byte-identical.

The batched cross-customer lane (``OnlineXatu.batched`` /
``XatuModel.hazards_np_batched``) exists purely for speed: one stacked
fused-inference pass per minute instead of one model call per customer.
Its contract is *bitwise* equivalence with the per-customer reference
lane — same alert stream down to the float bits of every survival value,
same checkpoint bytes — because hazards live inside checkpointed state
and any drift would break crash-equivalence across lanes.

Two layers of differential tests, both on the PR-1 shrinking property
runner (:mod:`repro.testing.props`):

* **kernel level** — ``hazards_np_batched(x)[i]`` vs
  ``hazards_np(x[i:i+1])[0]`` over random weights/inputs, float64 and
  float32, avg and max pooling;
* **detector level** — two :class:`OnlineXatu` instances (one per lane)
  driven minute-by-minute over randomized multi-customer traces (ragged
  customer counts, empty minutes, mid-stream churn, attack + benign
  mixes, incumbent alerts and mitigation ends), asserting identical
  ``(minute, customer, survival)`` alert tuples every minute and
  ``pickle``-byte-identical post-run state dicts.
"""

import pickle

import numpy as np

from repro.core import OnlineXatu, XatuModel
from repro.core.model import TimescaleSpec, XatuModelConfig
from repro.netflow import FlowRecord, RouteTable
from repro.signals import FeatureScaler
from repro.signals.history import AlertRecord
from repro.synth.attacks import AttackType
from repro.testing.props import choices, integers, run_property

# A deliberately tiny architecture: the equivalence argument is about op
# shapes and cast order, not capacity, so small-and-fast maximizes the
# number of random cases the suite can afford.
TINY_TIMESCALES = (TimescaleSpec("short", 1, 24), TimescaleSpec("long", 4, 8))
DETECT_WINDOW = 6


def _tiny_config(seed: int, pooling: str = "avg") -> XatuModelConfig:
    return XatuModelConfig(
        hidden_size=8,
        dense_size=6,
        detect_window=DETECT_WINDOW,
        timescales=TINY_TIMESCALES,
        pooling=pooling,
        seed=seed,
    )


# ----------------------------------------------------------------------
# kernel level: stacked inference rows == per-item inference
# ----------------------------------------------------------------------
def test_batched_hazard_rows_bitwise_equal_f64():
    def rows_match(seed, batch, pooling):
        model = XatuModel(_tiny_config(seed % 97, pooling))
        rng = np.random.default_rng(seed)
        x = rng.normal(0.0, 1.0, (batch, model.config.lookback_minutes, 273))
        stacked = model.hazards_np_batched(x)
        for i in range(batch):
            alone = model.hazards_np(x[i : i + 1])[0]
            assert np.array_equal(stacked[i], alone), f"row {i} drifted"

    run_property(
        rows_match,
        integers(0, 10**6),
        choices([1, 2, 7]),
        choices(["avg", "max"]),
        runs=10,
        seed=101,
    )


def test_batched_hazard_rows_bitwise_equal_f32():
    def rows_match_f32(seed, batch):
        model = XatuModel(_tiny_config(seed % 89))
        rng = np.random.default_rng(seed)
        x = rng.normal(0.0, 1.0, (batch, model.config.lookback_minutes, 273))
        stacked = model.hazards_np_batched(x, dtype=np.float32)
        assert stacked.dtype == np.float32
        for i in range(batch):
            alone = model.hazards_np(x[i : i + 1], dtype=np.float32)[0]
            assert np.array_equal(stacked[i], alone), f"f32 row {i} drifted"

    run_property(
        rows_match_f32, integers(0, 10**6), choices([1, 3, 64]), runs=6, seed=202
    )


def test_batched_rejects_bad_shapes():
    model = XatuModel(_tiny_config(0))
    lookback = model.config.lookback_minutes
    for bad in (
        np.zeros((lookback, 273)),          # missing batch axis
        np.zeros((2, lookback, 100)),       # wrong feature count
        np.zeros((2, lookback - 1, 273)),   # too short a window
    ):
        try:
            model.hazards_np_batched(bad)
        except ValueError:
            continue
        raise AssertionError(f"shape {bad.shape} should have been rejected")


# ----------------------------------------------------------------------
# detector level: full streaming loop, lane vs lane
# ----------------------------------------------------------------------
def _build_detector(
    model_seed: int,
    threshold: float,
    customer_of: dict[int, int],
    *,
    batched: bool,
    dtype=None,
    batch_block: int | None = None,
) -> OnlineXatu:
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), origin_asn=1)
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    model = XatuModel(_tiny_config(model_seed))
    model.eval()
    detector = OnlineXatu(
        model=model,
        scaler=scaler,
        threshold=threshold,
        customer_of=dict(customer_of),
        blocklist=set(),
        route_table=route_table,
        rearm_after=3,
    )
    detector.batched = batched
    detector.inference_dtype = dtype
    if batch_block is not None:
        detector.batch_block = batch_block
    return detector


def _random_minute(
    rng: np.random.Generator, minute: int, addresses: list[int]
) -> list[FlowRecord]:
    """One minute of mixed traffic; occasionally a fully empty minute."""
    if rng.random() < 0.15:
        return []
    flows: list[FlowRecord] = []
    victim = int(rng.choice(addresses))  # this minute's attack target
    for address in addresses:
        n = int(rng.integers(0, 3))
        attack = address == victim and rng.random() < 0.5
        if attack:
            n += int(rng.integers(3, 8))
        for _ in range(n):
            packets = int(rng.integers(200, 900)) if attack else int(rng.integers(1, 40))
            flows.append(
                FlowRecord(
                    timestamp=minute,
                    src_addr=int(rng.integers(1, 2**31)),
                    dst_addr=address,
                    src_port=int(rng.integers(1024, 65535)),
                    dst_port=443,
                    protocol=6,
                    packets=packets,
                    bytes_=packets * int(rng.integers(60, 1400)),
                )
            )
    return flows


def _cdet(customer_id: int, minute: int) -> AlertRecord:
    return AlertRecord(
        customer_id=customer_id,
        attack_type=AttackType.TCP_SYN,
        detect_minute=minute,
        end_minute=minute + 4,
        peak_bytes=5e6,
        attackers=frozenset({17, 23}),
    )


def _alert_key(alert) -> tuple[int, int, float]:
    return (alert.minute, alert.customer_id, alert.survival)


def _run_differential(
    seed: int,
    n_customers: int,
    n_minutes: int,
    threshold: float,
    *,
    dtype=None,
    batch_block: int = 256,
) -> None:
    """Drive both lanes over one randomized trace; assert bitwise equality."""
    customer_of = {60_000 + i: i for i in range(n_customers)}
    reference = _build_detector(
        seed % 1009, threshold, customer_of, batched=False, dtype=dtype
    )
    batched = _build_detector(
        seed % 1009, threshold, customer_of,
        batched=True, dtype=dtype, batch_block=batch_block,
    )
    rng = np.random.default_rng(seed)
    addresses = sorted(customer_of)
    churn_minute = n_minutes // 2
    produced = 0
    for minute in range(n_minutes):
        if minute == churn_minute:
            # Mid-stream churn: a brand-new customer starts routing to
            # both detectors and must be scored from this minute on.
            new_address, new_customer = 60_000 + n_customers, n_customers
            reference.customer_of[new_address] = new_customer
            batched.customer_of[new_address] = new_customer
            addresses.append(new_address)
        flows = _random_minute(rng, minute, addresses)
        if rng.random() < 0.2:
            record = _cdet(int(rng.integers(0, n_customers)), minute)
            reference.ingest_cdet_alert(record)
            batched.ingest_cdet_alert(record)
        if rng.random() < 0.15:
            customer = int(rng.integers(0, n_customers))
            reference.ingest_mitigation_end(customer, minute)
            batched.ingest_mitigation_end(customer, minute)
        ref_alerts = reference.step(minute, flows)
        bat_alerts = batched.step(minute, flows)
        assert list(map(_alert_key, ref_alerts)) == list(map(_alert_key, bat_alerts)), (
            f"alert streams diverged at minute {minute}"
        )
        produced += len(ref_alerts)
    ref_bytes = pickle.dumps(reference.state_dict(), protocol=4)
    bat_bytes = pickle.dumps(batched.state_dict(), protocol=4)
    assert ref_bytes == bat_bytes, "post-run checkpoints diverged"


def test_lanes_agree_over_random_traces():
    run_property(
        _run_differential,
        integers(0, 10**6),
        choices([1, 2, 7]),
        integers(4, 7),
        choices([0.9, 0.97, 0.5]),
        runs=6,
        seed=303,
    )


def test_lanes_agree_in_float32():
    def lanes_agree_f32(seed, n_customers, threshold):
        _run_differential(seed, n_customers, 5, threshold, dtype=np.float32)

    run_property(
        lanes_agree_f32,
        integers(0, 10**6),
        choices([2, 7]),
        choices([0.9, 0.97]),
        runs=4,
        seed=404,
    )


def test_lanes_agree_at_64_customers_ragged_blocks():
    # Blocks of 1, 5 and 256 all tile 65 (64 + one churned-in) customers
    # raggedly; chunking is a pure memory knob so all must agree with the
    # per-customer oracle byte for byte.
    for block in (1, 5, 256):
        _run_differential(8128, 64, 3, 0.95, batch_block=block)


def test_lane_flip_mid_stream_from_checkpoint():
    """A state dict written by one lane restores byte-exactly into the other."""
    customer_of = {60_000 + i: i for i in range(5)}
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), origin_asn=1)
    rng = np.random.default_rng(99)
    addresses = sorted(customer_of)

    reference = _build_detector(5, 0.95, customer_of, batched=False)
    minutes = [_random_minute(rng, m, addresses) for m in range(8)]
    for minute in range(4):
        reference.step(minute, minutes[minute])
    state = reference.state_dict()

    resumed = OnlineXatu.from_state_dict(state, route_table)
    resumed.batched = True  # flip lanes across the restore boundary
    assert pickle.dumps(resumed.state_dict(), protocol=4) == pickle.dumps(
        state, protocol=4
    )
    for minute in range(4, 8):
        ref_alerts = reference.step(minute, minutes[minute])
        res_alerts = resumed.step(minute, minutes[minute])
        assert list(map(_alert_key, ref_alerts)) == list(map(_alert_key, res_alerts))
    assert pickle.dumps(resumed.state_dict(), protocol=4) == pickle.dumps(
        reference.state_dict(), protocol=4
    )


def test_lane_knobs_never_enter_the_checkpoint():
    """The lane is engine policy: flipping it must not change state bytes."""
    customer_of = {60_000 + i: i for i in range(3)}
    plain = _build_detector(1, 0.9, customer_of, batched=False)
    tuned = _build_detector(
        1, 0.9, customer_of, batched=True, dtype=np.float64, batch_block=2
    )
    assert pickle.dumps(plain.state_dict(), protocol=4) == pickle.dumps(
        tuned.state_dict(), protocol=4
    )
