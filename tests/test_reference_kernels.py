"""Differential tests: vectorized production kernels vs. scalar references.

Every hot-path kernel in the nn/survival stack is checked against the
independently-written, loop-only implementations in
``repro.testing.reference`` over randomized shapes and seeds.  These are
the tests that must fail if a future vectorization changes the math —
see the perturbation-sensitivity test at the bottom, which proves a
1e-3 weight nudge is far outside the agreement tolerance.
"""

import numpy as np
import pytest

from repro.detect.cusum import cusum_scores
from repro.nn import (
    LSTM,
    Adam,
    Dense,
    SGD,
    Tensor,
    binary_cross_entropy,
    hazard_to_survival,
    safe_survival_loss,
)
from repro.survival.analysis import hazards_to_survival_np
from repro.testing import (
    reference_adam_step,
    reference_binary_cross_entropy,
    reference_cusum_scores,
    reference_dense,
    reference_hazard_to_survival,
    reference_lstm_cell,
    reference_lstm_sequence,
    reference_safe_survival_loss,
    reference_sgd_step,
)

ATOL = 1e-10


class TestLstmDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_sequence_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 4))
        steps = int(rng.integers(1, 7))
        features = int(rng.integers(1, 6))
        hidden = int(rng.integers(1, 6))
        lstm = LSTM(features, hidden, rng=rng)
        x = rng.normal(size=(batch, steps, features))
        ours, (h_last, _c_last) = lstm(Tensor(x))
        want = reference_lstm_sequence(
            x, lstm.w_x.numpy(), lstm.w_h.numpy(), lstm.bias.numpy()
        )
        assert ours.numpy() == pytest.approx(want, abs=ATOL)
        assert h_last.numpy() == pytest.approx(want[:, -1, :], abs=ATOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_single_cell_matches(self, seed):
        """One step with a non-zero carried state, checked cell-by-cell."""
        rng = np.random.default_rng(100 + seed)
        features, hidden = int(rng.integers(1, 5)), int(rng.integers(1, 5))
        lstm = LSTM(features, hidden, rng=rng)
        x = rng.normal(size=(1, 1, features))
        h0 = rng.normal(size=(1, hidden))
        c0 = rng.normal(size=(1, hidden))
        out, (h1, c1) = lstm(Tensor(x), state=(Tensor(h0), Tensor(c0)))
        want_h, want_c = reference_lstm_cell(
            x[0, 0], h0[0], c0[0],
            lstm.w_x.numpy(), lstm.w_h.numpy(), lstm.bias.numpy(),
        )
        assert h1.numpy()[0] == pytest.approx(want_h, abs=ATOL)
        assert c1.numpy()[0] == pytest.approx(want_c, abs=ATOL)
        assert out.numpy()[0, 0] == pytest.approx(want_h, abs=ATOL)


class TestDenseDifferential:
    @pytest.mark.parametrize(
        "activation", ["linear", "sigmoid", "tanh", "relu", "softplus"]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scalar_reference(self, activation, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 5))
        fin, fout = int(rng.integers(1, 6)), int(rng.integers(1, 6))
        layer = Dense(fin, fout, activation=activation, rng=rng)
        layer.bias.data[...] = rng.normal(size=fout)
        x = rng.normal(size=(rows, fin))
        got = layer(Tensor(x)).numpy()
        want = reference_dense(
            x, layer.weight.numpy(), layer.bias.numpy(), activation
        )
        assert got == pytest.approx(want, abs=ATOL)


class TestOptimizerDifferential:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_multi_step(self, seed, weight_decay):
        """Three consecutive Adam updates agree element-for-element."""
        rng = np.random.default_rng(seed)
        shapes = [(3, 2), (4,), (2, 2, 2)]
        params = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
        opt = Adam(params, lr=1e-2, weight_decay=weight_decay)
        ref_p = [p.data.copy() for p in params]
        ref_m = [np.zeros_like(p.data) for p in params]
        ref_v = [np.zeros_like(p.data) for p in params]
        for step in range(1, 4):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            opt.step()
            for i, g in enumerate(grads):
                ref_p[i], ref_m[i], ref_v[i] = reference_adam_step(
                    ref_p[i], g, ref_m[i], ref_v[i], step,
                    lr=1e-2, weight_decay=weight_decay,
                )
            for p, want in zip(params, ref_p):
                assert p.data == pytest.approx(want, abs=ATOL)

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_sgd_matches(self, momentum):
        rng = np.random.default_rng(0)
        p = Tensor(rng.normal(size=(5,)), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=momentum, weight_decay=0.01)
        want_p = p.data.copy()
        want_v = np.zeros_like(want_p)
        for _step in range(3):
            g = rng.normal(size=5)
            p.grad = g.copy()
            opt.step()
            want_p, want_v = reference_sgd_step(
                want_p, g, want_v, lr=0.1, momentum=momentum, weight_decay=0.01
            )
            assert p.data == pytest.approx(want_p, abs=ATOL)


class TestLossDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_safe_survival_loss_matches(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 6))
        steps = int(rng.integers(1, 12))
        hazards = rng.uniform(0.0, 2.0, size=(batch, steps))
        is_attack = rng.integers(0, 2, size=batch).astype(np.float64)
        label_times = rng.integers(0, steps, size=batch)
        got = safe_survival_loss(Tensor(hazards), is_attack, label_times).item()
        want = reference_safe_survival_loss(hazards, is_attack, label_times)
        assert got == pytest.approx(want, abs=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_bce_matches(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.uniform(0.0, 1.0, size=(3, 7))
        targets = rng.integers(0, 2, size=(3, 7)).astype(np.float64)
        got = binary_cross_entropy(Tensor(probs), targets).item()
        want = reference_binary_cross_entropy(probs, targets)
        assert got == pytest.approx(want, abs=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_hazard_to_survival_matches(self, seed):
        rng = np.random.default_rng(seed)
        hazards = rng.uniform(0.0, 1.5, size=(2, 3, 9))
        want = reference_hazard_to_survival(hazards)
        assert hazard_to_survival(Tensor(hazards)).numpy() == pytest.approx(
            want, abs=1e-12
        )
        assert hazards_to_survival_np(hazards) == pytest.approx(want, abs=1e-12)


class TestCusumDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_scores_match(self, seed):
        rng = np.random.default_rng(seed)
        series = rng.uniform(0, 100, size=int(rng.integers(1, 200)))
        mu = float(rng.uniform(0, 50))
        sigma = float(rng.uniform(0.0, 10))  # includes sigma→0 clamping path
        numstd = float(rng.choice([0.5, 1.0]))
        got = cusum_scores(series, mu, sigma, numstd)
        want = reference_cusum_scores(series, mu, sigma, numstd)
        assert got == pytest.approx(want, abs=1e-9)


class TestPerturbationSensitivity:
    """The acceptance gate: a 1e-3 weight nudge must break agreement."""

    def test_lstm_weight_perturbation_detected(self):
        rng = np.random.default_rng(42)
        lstm = LSTM(4, 6, rng=rng)
        x = rng.normal(size=(2, 8, 4))
        want = reference_lstm_sequence(
            x, lstm.w_x.numpy(), lstm.w_h.numpy(), lstm.bias.numpy()
        )
        lstm.w_x.data[0, 0] += 1e-3  # the silent-regression stand-in
        perturbed = lstm(Tensor(x))[0].numpy()
        assert not np.allclose(perturbed, want, atol=1e-8, rtol=1e-7), (
            "differential harness failed to detect a 1e-3 LSTM weight change"
        )

    def test_adam_eps_perturbation_detected(self):
        p = Tensor(np.ones(4), requires_grad=True)
        opt = Adam([p], lr=1e-2, eps=1e-4)  # wrong eps = changed math
        p.grad = np.full(4, 0.5)
        opt.step()
        want, _m, _v = reference_adam_step(
            np.ones(4), np.full(4, 0.5),
            np.zeros(4), np.zeros(4), 1, lr=1e-2,
        )
        assert not np.allclose(p.data, want, atol=1e-8, rtol=0.0)
