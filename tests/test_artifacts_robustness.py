"""Pipeline artifact persistence and a robustness-runner smoke test."""

import dataclasses

import numpy as np
import pytest

from repro.core import PipelineConfig, TrainConfig, XatuModelRegistry, XatuPipeline
from repro.synth import ScenarioConfig
from tests.conftest import small_model_config

pytestmark = pytest.mark.slow  # end-to-end pipeline runs; skip with -m "not slow"


def quick_config(**overrides):
    base = PipelineConfig(
        scenario=ScenarioConfig(
            total_days=10, minutes_per_day=100, prep_days=1.5,
            n_customers=5, n_botnets=2, botnet_size=60, seed=9,
        ),
        model=small_model_config(),
        train=TrainConfig(epochs=1, batch_size=8, learning_rate=3e-3),
        overhead_bound=0.5,
    )
    return dataclasses.replace(base, **overrides)


class TestArtifactPersistence:
    def test_save_before_run_rejected(self, tmp_path):
        pipeline = XatuPipeline(quick_config())
        with pytest.raises(RuntimeError, match="run"):
            pipeline.save_artifacts(tmp_path / "a")

    def test_single_model_roundtrip(self, tmp_path):
        pipeline = XatuPipeline(quick_config())
        result = pipeline.run()
        pipeline.save_artifacts(tmp_path / "artifacts")
        restored = XatuModelRegistry.load(tmp_path / "artifacts")
        entry = restored.entry_for(None)
        assert entry.threshold == pytest.approx(result.calibration.threshold)
        cfg = restored.model_config
        rng = np.random.default_rng(0)
        x = entry.scaler.transform(
            rng.normal(size=(cfg.lookback_minutes, cfg.n_features))
        )[None]
        assert entry.model.hazards_np(x).shape == (1, cfg.detect_window)

    def test_per_type_run_saves_registry(self, tmp_path):
        pipeline = XatuPipeline(quick_config(per_type=True, min_events_per_type=3))
        pipeline.run()
        pipeline.save_artifacts(tmp_path / "reg")
        restored = XatuModelRegistry.load(tmp_path / "reg")
        assert "_default" in restored.entries


class TestRobustnessRunnerSmoke:
    def test_volume_sweep_produces_all_points(self):
        from repro.eval import run_volume_sweep

        points = run_volume_sweep(quick_config(), scales=[1.0])
        assert {p.variant for p in points} == {"xatu", "xatu_no_aux"}
        for p in points:
            assert p.knob == "rampup_volume_scale"
            assert 0.0 <= p.effectiveness_median <= 1.0

    def test_rate_sweep_pins_ramp_rate(self):
        from repro.eval import run_rate_sweep

        points = run_rate_sweep(quick_config(), rates=[1.5])
        assert len(points) == 2
        assert all(p.value == 1.5 for p in points)
