"""Unit tests for the reverse-mode autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, gradcheck, no_grad
from repro.nn.autograd import _unbroadcast, is_grad_enabled


def randn(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestBasics:
    def test_tensor_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_item_requires_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_requires_scalar_without_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            t.backward()

    def test_zeros_ones_constructors(self):
        assert np.all(Tensor.zeros(2, 3).numpy() == 0)
        assert np.all(Tensor.ones(4).numpy() == 1)

    def test_detach_cuts_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = (a * 3.0).detach()
        c = b * 2.0
        assert not c.requires_grad and c._parents == ()

    def test_no_grad_disables_recording(self):
        a = Tensor(2.0, requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            out = a * a
            assert out._parents == ()
        assert is_grad_enabled()

    def test_no_grad_restores_flag_when_body_raises(self):
        """Regression: an exception inside the block must not leave the
        engine stuck in inference mode."""
        with pytest.raises(RuntimeError, match="boom"):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_nested_restores_each_level(self):
        with no_grad():
            with pytest.raises(ValueError):
                with no_grad():
                    raise ValueError("inner")
            assert not is_grad_enabled()  # outer block still active
        assert is_grad_enabled()

    def test_no_grad_as_bare_decorator(self):
        @no_grad
        def infer(x):
            assert not is_grad_enabled()
            return x * x

        a = Tensor(2.0, requires_grad=True)
        out = infer(a)
        assert out._parents == () and not out.requires_grad
        assert is_grad_enabled()
        assert infer.__name__ == "infer"  # wrapping preserves identity

    def test_no_grad_as_called_decorator(self):
        @no_grad()
        def infer(x):
            assert not is_grad_enabled()
            return x + 1.0

        out = infer(Tensor(1.0, requires_grad=True))
        assert out._parents == ()
        assert is_grad_enabled()

    def test_no_grad_decorated_function_raising_restores_flag(self):
        @no_grad
        def explode():
            raise KeyError("nope")

        with pytest.raises(KeyError):
            explode()
        assert is_grad_enabled()

    def test_no_grad_rejects_non_callable_argument(self):
        with pytest.raises(TypeError, match="no arguments"):
            no_grad(42)

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(3.0, requires_grad=True)
        (a * a).backward()
        (a * a).backward()
        assert a.grad == pytest.approx(12.0)  # 2 * (2a)

    def test_zero_grad(self):
        a = Tensor(3.0, requires_grad=True)
        (a * a).backward()
        a.zero_grad()
        assert a.grad is None


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(5.0, requires_grad=True)
        (a + b).backward()
        assert a.grad == 1.0 and b.grad == 1.0

    def test_sub_and_rsub(self):
        a = Tensor(2.0, requires_grad=True)
        (10.0 - a).backward()
        assert a.grad == -1.0

    def test_mul_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(5.0, requires_grad=True)
        (a * b).backward()
        assert a.grad == 5.0 and b.grad == 2.0

    def test_div_backward(self):
        a = Tensor(6.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a / b).backward()
        assert a.grad == pytest.approx(1 / 3)
        assert b.grad == pytest.approx(-6 / 9)

    def test_rdiv(self):
        a = Tensor(4.0, requires_grad=True)
        (8.0 / a).backward()
        assert a.grad == pytest.approx(-0.5)

    def test_neg_and_pow(self):
        a = Tensor(3.0, requires_grad=True)
        (-(a**2)).backward()
        assert a.grad == pytest.approx(-6.0)

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor(3.0, requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor(2.0)

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.all(b.grad == 3.0)

    def test_unbroadcast_handles_keepdims_axes(self):
        grad = np.ones((5, 3, 4))
        out = _unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        assert np.all(out == 20.0)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op", ["exp", "log", "sigmoid", "tanh", "relu", "softplus"]
    )
    def test_gradcheck_elementwise(self, op, rng):
        base = rng.uniform(0.2, 2.0, size=(3, 4))  # positive for log
        t = Tensor(base, requires_grad=True)
        gradcheck(lambda t: getattr(t, op)().sum(), [t])

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-800.0, 800.0]))
        out = t.sigmoid().numpy()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()

    def test_softplus_large_input_no_overflow(self):
        t = Tensor(np.array([1000.0]))
        assert np.isfinite(t.softplus().numpy()).all()

    def test_clip_gradient_masks_outside(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        assert list(t.grad) == [0.0, 1.0, 0.0]


class TestLinearAlgebra:
    def test_matmul_2d_gradcheck(self, rng):
        a = randn(rng, 3, 4)
        b = randn(rng, 4, 2)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_batched_gradcheck(self, rng):
        a = randn(rng, 2, 3, 4)
        b = randn(rng, 2, 4, 2)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_transpose_gradcheck(self, rng):
        a = randn(rng, 3, 4)
        gradcheck(lambda a: (a.T * a.T).sum(), [a])

    def test_transpose_axes(self, rng):
        a = randn(rng, 2, 3, 4)
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)

    def test_reshape_gradcheck(self, rng):
        a = randn(rng, 3, 4)
        gradcheck(lambda a: (a.reshape(2, 6) ** 2).sum(), [a])

    def test_getitem_slice_gradcheck(self, rng):
        a = randn(rng, 4, 5)
        gradcheck(lambda a: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_fancy_index_backward(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        assert list(a.grad) == [2.0, 0.0, 0.0, 1.0, 0.0]


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = randn(rng, 3, 4)
        gradcheck(lambda a: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_mean_matches_numpy(self, rng):
        data = rng.normal(size=(3, 4))
        assert Tensor(data).mean(axis=0).numpy() == pytest.approx(data.mean(axis=0))

    def test_mean_gradcheck(self, rng):
        a = randn(rng, 3, 4)
        gradcheck(lambda a: (a.mean(axis=0) ** 2).sum(), [a])

    def test_max_gradcheck_unique_values(self, rng):
        # Distinct values so the subgradient is unambiguous.
        a = Tensor(np.arange(12.0).reshape(3, 4) / 7.0, requires_grad=True)
        gradcheck(lambda a: a.max(axis=1).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        a.max().backward()
        assert a.grad == pytest.approx([0.5, 0.5, 0.0])

    def test_cumsum_forward(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        assert list(a.cumsum().numpy()) == [1.0, 3.0, 6.0]

    def test_cumsum_gradcheck(self, rng):
        a = randn(rng, 2, 5)
        gradcheck(lambda a: (a.cumsum(axis=1) ** 2).sum(), [a])


class TestConcatStack:
    def test_concat_forward_backward(self, rng):
        a = randn(rng, 2, 3)
        b = randn(rng, 2, 2)
        gradcheck(lambda a, b: (Tensor.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_forward_backward(self, rng):
        a = randn(rng, 3)
        b = randn(rng, 3)
        gradcheck(lambda a, b: (Tensor.stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_without_grad_inputs_is_constant(self):
        out = Tensor.concat([Tensor(np.ones(2)), Tensor(np.zeros(2))])
        assert out._parents == ()


class TestGradcheckHelper:
    def test_gradcheck_detects_wrong_gradient(self):
        class Bad(Tensor):
            pass

        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def wrong(t):
            # exp but tell autograd the gradient is 1 (lie via custom op)
            return t._unary(np.exp, lambda g, a, o: g)

        with pytest.raises(AssertionError, match="gradcheck failed"):
            gradcheck(lambda a: wrong(a).sum(), [a])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_chain_of_ops_matches_numeric_gradient(rows, cols, seed):
    """Property: composite expressions gradcheck across random shapes."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(cols,)), requires_grad=True)
    gradcheck(lambda a, b: ((a * b).tanh().sum(axis=0) ** 2).sum(), [a, b])
