"""Unit tests for the synthetic ISP world, campaigns, and trace generation."""

import numpy as np
import pytest

from repro.netflow import is_bogon
from repro.synth import (
    ATTACK_TYPE_MIX,
    TYPE_TRANSITIONS,
    AttackType,
    BenignConfig,
    BenignTrafficModel,
    Campaign,
    CampaignConfig,
    IspWorld,
    ScenarioConfig,
    TraceGenerator,
    WorldConfig,
    generate_attack_flows,
    schedule_campaigns,
    signature_for,
)


class TestWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return IspWorld(WorldConfig(n_customers=6, n_botnets=3, botnet_size=50, seed=1))

    def test_population_sizes(self, world):
        assert len(world.customers) == 6
        assert len(world.botnets) == 3
        assert all(b.size == 50 for b in world.botnets)

    def test_customer_prefixes_routed(self, world):
        for customer in world.customers:
            entry = world.route_table.lookup(customer.address)
            assert entry is not None
            assert entry.origin_asn == customer.asn

    def test_botnet_members_routed_not_spoofed(self, world):
        botnet = world.botnets[0]
        for addr in botnet.members[:10]:
            assert not world.route_table.is_spoofed(int(addr))

    def test_blocklisted_members_subset(self, world):
        for botnet in world.botnets:
            assert set(botnet.blocklisted_members) <= set(botnet.members)

    def test_bogon_pool_is_bogon(self, world):
        for addr in world.bogon_pool(20):
            assert is_bogon(int(addr))

    def test_unrouted_pool_unrouted(self, world):
        for addr in world.unrouted_pool(20):
            assert world.route_table.lookup(int(addr)) is None

    def test_resolvers_not_blocklisted(self, world):
        listed = set()
        for botnet in world.botnets:
            listed.update(int(a) for a in botnet.blocklisted_members)
        assert not (set(int(a) for a in world.resolvers) & listed)

    def test_customer_by_address(self, world):
        c = world.customers[2]
        assert world.customer_by_address(c.address) is c
        assert world.customer_by_address(12345) is None


class TestBenign:
    @pytest.fixture(scope="class")
    def model(self):
        world = IspWorld(WorldConfig(n_customers=2, seed=2))
        return world, BenignTrafficModel(
            world.benign_clients,
            world.country_of,
            BenignConfig(minutes_per_day=120, burst_probability=0.0),
            rng=np.random.default_rng(4),
        )

    def test_rate_positive(self, model):
        world, benign = model
        assert benign.rate_at(world.customers[0], 10) > 0

    def test_diurnal_variation_present(self, model):
        world, benign = model
        customer = world.customers[0]
        rates = [benign.rate_at(customer, m) for m in range(120)]
        assert max(rates) / min(rates) > 1.2

    def test_flows_target_customer(self, model):
        world, benign = model
        customer = world.customers[1]
        for flow in benign.flows_at(customer, 5):
            assert flow.dst_addr == customer.address
            assert flow.timestamp == 5

    def test_burst_multiplies_rate(self):
        world = IspWorld(WorldConfig(n_customers=1, seed=2))
        cfg = BenignConfig(minutes_per_day=120, burst_probability=1.0, burst_multiplier=50.0, noise_sigma=0.0)
        benign = BenignTrafficModel(world.benign_clients, world.country_of, cfg, rng=np.random.default_rng(1))
        burst = benign.rate_at(world.customers[0], 0)
        cfg2 = BenignConfig(minutes_per_day=120, burst_probability=0.0, noise_sigma=0.0)
        calm_model = BenignTrafficModel(world.benign_clients, world.country_of, cfg2, rng=np.random.default_rng(1))
        calm = calm_model.rate_at(world.customers[0], 0)
        assert burst == pytest.approx(50.0 * calm)

    def test_empty_client_pool_rejected(self):
        with pytest.raises(ValueError):
            BenignTrafficModel(np.empty(0, dtype=np.int64), {})


class TestAttackTypes:
    def test_mix_sums_to_one(self):
        assert sum(ATTACK_TYPE_MIX.values()) == pytest.approx(1.0)

    def test_transitions_rows_normalizable(self):
        for row in TYPE_TRANSITIONS.values():
            assert sum(row.values()) == pytest.approx(1.0, abs=0.05)

    def test_same_type_transition_dominates(self):
        for attack_type, row in TYPE_TRANSITIONS.items():
            assert row[attack_type] > 0.9

    def test_signature_matches_own_flows(self, rng):
        for attack_type in AttackType:
            sig = signature_for(attack_type, dst_addr=999)
            flows = generate_attack_flows(
                attack_type, minute=0, dst_addr=999,
                sources=np.arange(10), total_bytes=1e6, rng=rng,
            )
            assert flows, attack_type
            assert all(sig.matches(f) for f in flows)

    def test_signature_rejects_other_destination(self, rng):
        sig = signature_for(AttackType.UDP_FLOOD, dst_addr=999)
        flows = generate_attack_flows(
            AttackType.UDP_FLOOD, 0, dst_addr=1000,
            sources=np.arange(5), total_bytes=1e5, rng=rng,
        )
        assert not any(sig.matches(f) for f in flows)

    def test_flow_volume_approximates_request(self, rng):
        flows = generate_attack_flows(
            AttackType.UDP_FLOOD, 0, 999, np.arange(50), 1e7, rng,
        )
        total = sum(f.bytes_ for f in flows)
        assert total == pytest.approx(1e7, rel=0.2)

    def test_empty_sources_yield_nothing(self, rng):
        assert generate_attack_flows(
            AttackType.TCP_SYN, 0, 1, np.array([]), 1e6, rng
        ) == []


class TestCampaigns:
    def make_campaigns(self, **cfg_overrides):
        world = IspWorld(WorldConfig(n_customers=6, n_botnets=2, botnet_size=50, seed=5))
        cfg = CampaignConfig(prep_days=1, minutes_per_day=100, **cfg_overrides)
        rng = np.random.default_rng(5)
        return schedule_campaigns(world.botnets, world.customers, 2000, cfg, rng)

    def test_attacks_within_horizon(self):
        for campaign in self.make_campaigns():
            for attack in campaign.attacks:
                assert 0 <= attack.onset < attack.end <= 2000

    def test_prep_precedes_each_attack(self):
        for campaign in self.make_campaigns():
            real_preps = [p for p in campaign.preps if not p.aborted]
            assert len(real_preps) == len(campaign.attacks)
            for prep, attack in zip(real_preps, campaign.attacks):
                assert prep.end == attack.onset
                assert prep.start < prep.end

    def test_targets_within_group(self):
        for campaign in self.make_campaigns():
            group = {t.customer_id for t in campaign.targets}
            for attack in campaign.attacks:
                assert attack.customer_id in group

    def test_ramp_rate_range_respected(self):
        for campaign in self.make_campaigns(ramp_rate_range=(1.5, 1.5)):
            for attack in campaign.attacks:
                assert attack.ramp_rate == 1.5

    def test_rate_at_outside_window_zero(self):
        campaigns = self.make_campaigns()
        attack = next(a for c in campaigns for a in c.attacks)
        assert attack.rate_at(attack.onset - 1) == 0.0
        assert attack.rate_at(attack.end) == 0.0

    def test_rate_ramps_to_peak(self):
        campaigns = self.make_campaigns(ramp_rate_range=(1.0, 1.0))
        attack = max(
            (a for c in campaigns for a in c.attacks), key=lambda a: a.duration
        )
        rates = [attack.rate_at(m) for m in range(attack.onset, attack.end)]
        assert rates[0] == pytest.approx(attack.peak_bytes / 16.0)
        if attack.duration > attack.ramp_minutes:
            assert max(rates) == pytest.approx(attack.peak_bytes)
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))


class TestTraceGeneration:
    @pytest.fixture(scope="class")
    def small_trace(self):
        cfg = ScenarioConfig(
            total_days=8, minutes_per_day=100, prep_days=1.5,
            n_customers=5, n_botnets=2, botnet_size=60, seed=9,
        )
        return TraceGenerator(cfg).materialize()

    def test_events_have_anomalous_traffic(self, small_trace):
        assert small_trace.events
        for event in small_trace.events:
            assert event.anomalous_bytes.shape[0] == event.duration
            assert event.anomalous_bytes.sum() > 0

    def test_attackers_recorded(self, small_trace):
        for event in small_trace.events:
            assert len(event.attackers) > 0

    def test_anomalous_subset_of_customer_series(self, small_trace):
        event = small_trace.events[0]
        series = small_trace.matrix.bytes_series(
            event.customer_id, event.onset, event.end
        )
        assert (event.anomalous_bytes <= series + 1e-6).all()

    def test_blocklist_class_populated(self, small_trace):
        from repro.netflow import SOURCE_CLASS_BLOCKLIST
        total = sum(
            small_trace.matrix.total_bytes(
                c.customer_id, 0, small_trace.horizon, SOURCE_CLASS_BLOCKLIST
            )
            for c in small_trace.world.customers
        )
        assert total > 0

    def test_prev_attacker_class_populated_after_first_attack(self, small_trace):
        from repro.netflow import SOURCE_CLASS_PREV_ATTACKER
        events = sorted(small_trace.events, key=lambda e: e.onset)
        repeat_customers = {
            e.customer_id for i, e in enumerate(events)
            if any(e2.customer_id == e.customer_id for e2 in events[:i])
        }
        if not repeat_customers:
            pytest.skip("no repeat-attack customer in this seed")
        total = sum(
            small_trace.matrix.total_bytes(
                cid, 0, small_trace.horizon, SOURCE_CLASS_PREV_ATTACKER
            )
            for cid in repeat_customers
        )
        assert total > 0

    def test_events_sorted_ids_match_index(self, small_trace):
        for i, event in enumerate(small_trace.events):
            assert event.event_id == i

    def test_rampup_volume_scale_reduces_ramp_traffic(self):
        base_cfg = ScenarioConfig(
            total_days=8, minutes_per_day=100, prep_days=1.5,
            n_customers=5, n_botnets=2, botnet_size=60, seed=9,
        )
        import dataclasses
        scaled_cfg = dataclasses.replace(base_cfg, rampup_volume_scale=0.2)
        base = TraceGenerator(base_cfg).materialize()
        scaled = TraceGenerator(scaled_cfg).materialize()
        # Same campaign schedule (same seed), smaller ramp traffic.
        assert len(base.events) == len(scaled.events)
        base_total = sum(e.anomalous_bytes.sum() for e in base.events)
        scaled_total = sum(e.anomalous_bytes.sum() for e in scaled.events)
        assert scaled_total < base_total

    def test_duration_classes(self, small_trace):
        for event in small_trace.events:
            cls = event.duration_class()
            if event.duration < 5:
                assert cls == "short"
            elif event.duration < 20:
                assert cls == "medium"
            else:
                assert cls == "long"

    def test_horizon_and_flow_counters(self, small_trace):
        assert small_trace.horizon == 800
        assert small_trace.total_flows >= small_trace.sampled_flows > 0
