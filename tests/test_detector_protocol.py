"""The unified streaming Detector protocol (repro.detect.api).

Covers: structural conformance of all three deployable detectors, the
streaming CDet behaviour (causal thresholds, sustain/release), the
deprecated call signatures (still working, now warning), and the eval
driver streaming a trace through any protocol detector.
"""

import numpy as np
import pytest

from repro.core import OnlineXatu, XatuModel
from repro.detect import (
    Alert,
    Detector,
    FastNetMonDetector,
    NetScoutDetector,
    StreamAlert,
    TraceDetector,
    drive,
    infer_minute,
)
from repro.detect.entropy import EntropyDetector
from repro.eval import stream_trace
from repro.netflow import FlowRecord
from repro.signals import FeatureScaler
from tests.conftest import small_model_config


def _flow(minute, dst, src=7_000, bytes_=1_000, packets=10):
    return FlowRecord(
        timestamp=minute,
        src_addr=src,
        dst_addr=dst,
        src_port=1234,
        dst_port=443,
        protocol=6,
        packets=packets,
        bytes_=bytes_,
    )


def _online_xatu(trace):
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    return OnlineXatu(
        model=XatuModel(small_model_config()),
        scaler=scaler,
        threshold=0.5,
        customer_of={c.address: c.customer_id for c in trace.world.customers},
        blocklist=set(),
        route_table=trace.world.route_table,
    )


class TestProtocolConformance:
    def test_all_three_detectors_satisfy_protocol(self, trace):
        detectors = [
            NetScoutDetector(),
            FastNetMonDetector(),
            _online_xatu(trace),
        ]
        for detector in detectors:
            assert isinstance(detector, Detector), type(detector).__name__
            assert isinstance(detector.name, str)

    def test_stream_alert_satisfies_alert(self):
        alert = StreamAlert(customer_id=1, minute=5, score=2.0, detector="netscout")
        assert isinstance(alert, Alert)

    def test_online_alert_satisfies_alert(self, trace):
        online = _online_xatu(trace)
        from repro.core import OnlineAlert

        alert = OnlineAlert(customer_id=1, minute=5, survival=0.4)
        assert isinstance(alert, Alert)
        assert alert.score == alert.survival
        assert alert.detector == "xatu"
        assert online.name == "xatu"

    def test_infer_minute_advances_and_jumps(self):
        assert infer_minute(4, []) == 5
        assert infer_minute(4, [_flow(9, 1)]) == 9
        # flows never rewind the clock
        assert infer_minute(10, [_flow(3, 1)]) == 11


class TestStreamingCDet:
    def test_netscout_streams_sustained_excursion(self):
        detector = NetScoutDetector(
            profile_quantile=0.9, headroom=1.5, sustain=3, release=2, profile_window=20
        )
        # 20 quiet profile minutes, then a sustained flood.
        for minute in range(20):
            detector.observe_minute([_flow(minute, dst=42, bytes_=1_000)])
        assert detector.poll_alerts() == []
        for minute in range(20, 26):
            detector.observe_minute([_flow(minute, dst=42, bytes_=500_000)])
        alerts = detector.poll_alerts()
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.customer_id == 42
        assert alert.minute == 22  # 3rd consecutive over-threshold minute
        assert alert.detector == "netscout"
        assert alert.score > 1.0

    def test_netscout_rearms_after_release(self):
        detector = NetScoutDetector(
            profile_quantile=0.9, headroom=1.5, sustain=2, release=2, profile_window=10
        )
        for minute in range(10):
            detector.observe_minute([_flow(minute, dst=1, bytes_=1_000)])
        for minute in range(10, 14):
            detector.observe_minute([_flow(minute, dst=1, bytes_=400_000)])
        assert len(detector.poll_alerts()) == 1
        # quiet for >= release minutes re-arms, second burst re-alerts
        for minute in range(14, 18):
            detector.observe_minute([_flow(minute, dst=1, bytes_=1_000)])
        for minute in range(18, 22):
            detector.observe_minute([_flow(minute, dst=1, bytes_=400_000)])
        assert len(detector.poll_alerts()) == 1

    def test_fastnetmon_streams_band_excursion(self):
        detector = FastNetMonDetector(alpha=0.1, k=3.0, floor_multiplier=2.0, sustain=2, release=2)
        for minute in range(30):
            detector.observe_minute([_flow(minute, dst=9, bytes_=1_000)])
        assert detector.poll_alerts() == []
        for minute in range(30, 34):
            detector.observe_minute([_flow(minute, dst=9, bytes_=800_000)])
        alerts = detector.poll_alerts()
        assert len(alerts) == 1
        assert alerts[0].detector == "fastnetmon"

    def test_reset_returns_to_cold_state(self):
        detector = NetScoutDetector(profile_window=5, sustain=2)
        for minute in range(8):
            detector.observe_minute([_flow(minute, dst=1, bytes_=300_000)])
        detector.reset()
        detector.observe_minute([_flow(0, dst=1, bytes_=300_000)])
        # fresh profile: no frozen threshold yet, so no alerts possible
        assert detector.poll_alerts() == []

    def test_quiet_minutes_are_observed(self):
        detector = NetScoutDetector(
            profile_quantile=0.9, headroom=1.5, sustain=2, release=2, profile_window=5
        )
        for minute in range(5):
            detector.observe_minute([_flow(minute, dst=1, bytes_=1_000)])
        detector.observe_minute([_flow(5, dst=1, bytes_=300_000)])
        # a quiet minute breaks the run before sustain is reached
        detector.observe_minute([])
        detector.observe_minute([_flow(7, dst=1, bytes_=300_000)])
        assert detector.poll_alerts() == []

    def test_customer_of_maps_addresses(self):
        detector = NetScoutDetector(
            profile_quantile=0.9, headroom=1.5, sustain=2, release=2, profile_window=5,
            customer_of={1_000: 77},
        )
        for minute in range(5):
            detector.observe_minute([_flow(minute, dst=1_000, bytes_=1_000)])
        for minute in range(5, 8):
            detector.observe_minute([_flow(minute, dst=1_000, bytes_=300_000)])
        alerts = detector.poll_alerts()
        assert alerts and alerts[0].customer_id == 77


class TestDeprecatedSignatures:
    def test_trace_run_warns_and_matches_detect(self, trace):
        detector = NetScoutDetector()
        with pytest.warns(DeprecationWarning, match="detect"):
            legacy = detector.run(trace)
        assert legacy == detector.detect(trace)

    def test_fastnetmon_run_warns(self, trace):
        with pytest.warns(DeprecationWarning):
            FastNetMonDetector().run(trace)

    def test_entropy_run_warns_and_matches_detect(self, trace):
        detector = EntropyDetector()
        with pytest.warns(DeprecationWarning):
            legacy = detector.run(trace)
        assert legacy == detector.detect(trace)

    def test_online_observe_minute_two_arg_warns(self, trace):
        online = _online_xatu(trace)
        with pytest.warns(DeprecationWarning, match="step"):
            alerts = online.observe_minute(0, [])
        assert alerts == []  # legacy form still returns the minute's alerts

    def test_trace_detector_protocol_still_structural(self):
        assert isinstance(NetScoutDetector(), TraceDetector)
        assert isinstance(EntropyDetector(), TraceDetector)


class TestDrivers:
    def test_drive_fills_quiet_minutes(self):
        calls = []

        class Spy:
            name = "spy"

            def observe_minute(self, flows):
                calls.append(len(flows))

            def poll_alerts(self):
                return []

            def reset(self):
                pass

        drive(Spy(), [(0, [_flow(0, 1)]), (3, [_flow(3, 1)])])
        # minute 0, quiet 1 and 2, minute 3
        assert calls == [1, 0, 0, 1]

    def test_stream_trace_works_for_every_detector(self, trace):
        customer_of = {c.address: c.customer_id for c in trace.world.customers}
        known = {c.customer_id for c in trace.world.customers}
        detectors = [
            NetScoutDetector(customer_of=customer_of),
            FastNetMonDetector(customer_of=customer_of),
            _online_xatu(trace),
        ]
        for detector in detectors:
            alerts = stream_trace(detector, trace, 0, 30)
            for alert in alerts:
                assert isinstance(alert, Alert)
                assert alert.customer_id in known
                assert 0 <= alert.minute < 30

    def test_streaming_netscout_detects_real_attack(self, trace):
        """The causal streaming mode finds at least one attack the offline
        mode also finds on the shared trace."""
        customer_of = {c.address: c.customer_id for c in trace.world.customers}
        offline = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
        assert offline, "shared trace should contain detectable attacks"
        streaming = stream_trace(
            NetScoutDetector(customer_of=customer_of), trace
        )
        assert streaming, "streaming mode should emit alerts on the same trace"
        streamed_customers = {a.customer_id for a in streaming}
        assert streamed_customers & {a.customer_id for a in offline}
