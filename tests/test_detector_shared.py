"""Tests for the shared alert-rule helpers (match_event / windows_from_hazards)."""

import numpy as np
import pytest

from repro.core.detector import match_event, windows_from_hazards
from repro.scrub import DiversionWindow


class TestMatchEvent:
    def test_matches_within_event(self, trace):
        event = trace.events[0]
        assert match_event(
            trace, event.customer_id, event.onset + 1, window=10
        ) == event.event_id

    def test_matches_early_within_window(self, trace):
        event = trace.events[0]
        assert match_event(
            trace, event.customer_id, event.onset - 5, window=10
        ) == event.event_id

    def test_no_match_too_early(self, trace):
        event = trace.events[0]
        prior = [
            e for e in trace.events
            if e.customer_id == event.customer_id and e.end <= event.onset - 50
        ]
        if prior:
            pytest.skip("an earlier event overlaps the probe minute")
        assert match_event(
            trace, event.customer_id, event.onset - 50, window=10
        ) == -1

    def test_no_match_wrong_customer(self, trace):
        event = trace.events[0]
        other = next(
            c.customer_id for c in trace.world.customers
            if c.customer_id != event.customer_id
        )
        overlapping = [
            e for e in trace.events
            if e.customer_id == other and e.onset - 10 <= event.onset < e.end
        ]
        if overlapping:
            pytest.skip("another event overlaps on the probe customer")
        assert match_event(trace, other, event.onset, window=10) == -1

    def test_most_recent_event_wins(self, trace):
        """Overlap resolution prefers the event with the latest onset."""
        by_customer = {}
        for e in trace.events:
            by_customer.setdefault(e.customer_id, []).append(e)
        for events in by_customer.values():
            events.sort(key=lambda e: e.onset)
            for prev_event, next_event in zip(events, events[1:]):
                if prev_event.end > next_event.onset - 10:
                    got = match_event(
                        trace, next_event.customer_id, next_event.onset, window=10
                    )
                    assert got == next_event.event_id
                    return
        pytest.skip("no overlapping event pair in this seed")


class TestWindowsFromHazards:
    def test_zero_hazards_no_windows(self, trace):
        series = {0: np.zeros(100)}
        windows = windows_from_hazards(trace, series, (0, 100), 10, threshold=0.5)
        assert windows == []

    def test_high_hazards_divert(self, trace):
        series = {0: np.full(100, 2.0)}
        windows = windows_from_hazards(trace, series, (0, 100), 10, threshold=0.5)
        assert windows
        for w in windows:
            assert 0 <= w.start < w.end <= 100

    def test_fp_diversions_capped(self, trace):
        """Where no events exist, each diversion lasts max_fp minutes."""
        quiet_customer = None
        for c in trace.world.customers:
            if not any(e.customer_id == c.customer_id for e in trace.events):
                quiet_customer = c.customer_id
                break
        if quiet_customer is None:
            pytest.skip("every customer is attacked in this seed")
        series = {quiet_customer: np.full(60, 5.0)}
        windows = windows_from_hazards(
            trace, series, (0, 60), 10, threshold=0.5, max_fp_diversion=7
        )
        assert all(w.end - w.start <= 7 for w in windows)

    def test_matched_diversion_runs_to_event_end(self, trace):
        event = trace.events[0]
        lo = max(0, event.onset - 20)
        hi = min(trace.horizon, event.end + 20)
        hazards = np.zeros(hi - lo)
        hazards[event.onset - lo] = 10.0  # spike exactly at onset
        windows = windows_from_hazards(
            trace, {event.customer_id: hazards}, (lo, hi), 10, threshold=0.5
        )
        covering = [w for w in windows if w.start <= event.onset < w.end]
        assert covering
        assert covering[0].end >= min(hi, event.end)

    def test_matches_detector_rolling_rule(self, trace, rng):
        """The window rule agrees with DetectionOutput.survival_series."""
        from repro.core.detector import DetectionOutput

        hazards = np.abs(rng.normal(size=80)) * 0.3
        output = DetectionOutput(hazard_series={0: hazards})
        survival = output.survival_series(0, 10)
        threshold = 0.4
        windows = windows_from_hazards(
            trace, {0: hazards}, (0, 80), 10, threshold, max_fp_diversion=1
        )
        # With 1-minute FP diversions and no event matches for customer 0
        # in [0, 80): alert minutes == survival-below-threshold minutes.
        has_event = any(
            e.customer_id == 0 and e.onset - 10 <= m < e.end
            for e in trace.events for m in range(80)
        )
        if has_event:
            pytest.skip("customer 0 has early events in this seed")
        alert_minutes = {w.start for w in windows}
        expected = {int(i) for i in np.nonzero(survival < threshold)[0]}
        assert alert_minutes == expected
