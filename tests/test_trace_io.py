"""Tests for trace persistence (save_trace / load_trace)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.synth import TraceGenerator, load_trace, save_trace, world_checksum
from repro.netflow import SOURCE_CLASS_ALL, SOURCE_CLASS_BLOCKLIST


@pytest.fixture(scope="module")
def saved(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace_store")
    save_trace(trace, directory)
    return directory, trace, load_trace(directory)


class TestRoundtrip:
    def test_files_created(self, saved):
        directory, *_ = saved
        for name in ("trace.json", "matrix.npz", "events.npz"):
            assert (directory / name).exists()

    def test_config_preserved(self, saved):
        _dir, original, restored = saved
        assert restored.config == original.config

    def test_counters_preserved(self, saved):
        _dir, original, restored = saved
        assert restored.horizon == original.horizon
        assert restored.total_flows == original.total_flows
        assert restored.sampled_flows == original.sampled_flows

    def test_events_roundtrip(self, saved):
        _dir, original, restored = saved
        assert len(restored.events) == len(original.events)
        for a, b in zip(original.events, restored.events):
            assert a.event_id == b.event_id
            assert a.attack_type == b.attack_type
            assert a.onset == b.onset and a.end == b.end
            assert a.signature == b.signature
            assert a.attackers == b.attackers
            assert b.anomalous_bytes == pytest.approx(a.anomalous_bytes)

    def test_preps_roundtrip(self, saved):
        _dir, original, restored = saved
        assert len(restored.preps) == len(original.preps)
        assert restored.preps[0] == original.preps[0]

    def test_matrix_series_identical(self, saved):
        _dir, original, restored = saved
        for customer in original.world.customers[:3]:
            cid = customer.customer_id
            a = original.matrix.bytes_series(cid, 0, original.horizon)
            b = restored.matrix.bytes_series(cid, 0, restored.horizon)
            assert b == pytest.approx(a)

    def test_matrix_feature_blocks_identical(self, saved):
        _dir, original, restored = saved
        event = original.events[0]
        for cls in (SOURCE_CLASS_ALL, SOURCE_CLASS_BLOCKLIST):
            a = original.matrix.feature_block(
                event.customer_id, event.onset - 30, event.end, cls
            )
            b = restored.matrix.feature_block(
                event.customer_id, event.onset - 30, event.end, cls
            )
            assert b == pytest.approx(a)

    def test_world_reconstructed_identically(self, saved):
        _dir, original, restored = saved
        assert world_checksum(restored.world) == world_checksum(original.world)
        assert [c.address for c in restored.world.customers] == [
            c.address for c in original.world.customers
        ]

    def test_restored_trace_usable_by_detectors(self, saved):
        from repro.detect import NetScoutDetector

        _dir, original, restored = saved
        a = NetScoutDetector().detect(original)
        b = NetScoutDetector().detect(restored)
        assert [(x.customer_id, x.detect_minute) for x in a] == [
            (x.customer_id, x.detect_minute) for x in b
        ]


class TestGuards:
    def test_version_mismatch_rejected(self, saved):
        directory, *_ = saved
        manifest = json.loads((directory / "trace.json").read_text())
        manifest["format_version"] = 999
        bad_dir = directory.parent / "bad_version"
        bad_dir.mkdir(exist_ok=True)
        for name in ("matrix.npz", "events.npz"):
            (bad_dir / name).write_bytes((directory / name).read_bytes())
        (bad_dir / "trace.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported trace format"):
            load_trace(bad_dir)

    def test_checksum_mismatch_rejected(self, saved):
        directory, *_ = saved
        manifest = json.loads((directory / "trace.json").read_text())
        manifest["world_checksum"] = manifest["world_checksum"] ^ 0xDEAD
        bad_dir = directory.parent / "bad_checksum"
        bad_dir.mkdir(exist_ok=True)
        for name in ("matrix.npz", "events.npz"):
            (bad_dir / name).write_bytes((directory / name).read_bytes())
        (bad_dir / "trace.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="mismatch"):
            load_trace(bad_dir)

    def test_sampling_rates_tuple_restored(self, tmp_path):
        cfg = dataclasses.replace(
            TraceGenerator().config,
            total_days=2, minutes_per_day=60, prep_days=0.5,
            n_customers=3, n_botnets=1, botnet_size=40,
            sampling_rates=(1, 10),
        )
        trace = TraceGenerator(cfg).materialize()
        save_trace(trace, tmp_path / "t")
        restored = load_trace(tmp_path / "t")
        assert restored.config.sampling_rates == (1, 10)
