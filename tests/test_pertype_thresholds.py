"""Tests for per-attack-type thresholds in the detector and pipeline."""

import numpy as np
import pytest

from repro.core import DetectorConfig, XatuDetector, XatuModel
from repro.signals import FeatureExtractor, FeatureScaler
from tests.conftest import small_model_config


@pytest.fixture(scope="module")
def detector_setup(trace):
    cfg = small_model_config()
    model_a = XatuModel(cfg)
    model_b = XatuModel(cfg)
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    extractor = FeatureExtractor(trace)
    # Determine a type actually present in the trace so routing happens.
    present_types = {e.attack_type.value for e in trace.events}
    typed = sorted(present_types)[0]
    models = {"_default": model_a, typed: model_b}
    scalers = {"_default": scaler, typed: scaler}
    return trace, extractor, models, scalers, typed


class TestServingKeysAndThresholds:
    def test_single_model_key(self, trace):
        cfg = small_model_config()
        scaler = FeatureScaler()
        scaler.mean_ = np.zeros(273)
        scaler.std_ = np.ones(273)
        det = XatuDetector(trace, FeatureExtractor(trace), XatuModel(cfg), scaler)
        assert det.serving_key(0) == "_single"

    def test_attacked_customer_routes_to_typed_model(self, detector_setup):
        trace, extractor, models, scalers, typed = detector_setup
        det = XatuDetector(trace, extractor, models, scalers)
        victim = next(
            e.customer_id for e in trace.events if e.attack_type.value == typed
        )
        # serving_key uses the customer's most recent attack type.
        last_type = None
        for e in trace.events:
            if e.customer_id == victim:
                last_type = e.attack_type.value
        expected = typed if last_type == typed else "_default"
        assert det.serving_key(victim) in (expected, "_default", typed)

    def test_never_attacked_customer_uses_default(self, detector_setup):
        trace, extractor, models, scalers, _typed = detector_setup
        attacked = {e.customer_id for e in trace.events}
        quiet = [c.customer_id for c in trace.world.customers if c.customer_id not in attacked]
        if not quiet:
            pytest.skip("every customer attacked on this seed")
        det = XatuDetector(trace, extractor, models, scalers)
        assert det.serving_key(quiet[0]) == "_default"

    def test_threshold_override_applies(self, detector_setup):
        trace, extractor, models, scalers, typed = detector_setup
        det = XatuDetector(
            trace, extractor, models, scalers,
            DetectorConfig(threshold=0.5, thresholds_by_key={typed: 0.05}),
        )
        for customer in trace.world.customers:
            cid = customer.customer_id
            expected = 0.05 if det.serving_key(cid) == typed else 0.5
            assert det.threshold_for(cid) == expected

    def test_missing_override_falls_back(self, detector_setup):
        trace, extractor, models, scalers, _typed = detector_setup
        det = XatuDetector(
            trace, extractor, models, scalers,
            DetectorConfig(threshold=0.7, thresholds_by_key={}),
        )
        assert det.threshold_for(0) == 0.7

    def test_mismatched_model_scaler_types_rejected(self, detector_setup):
        trace, extractor, models, _scalers, _typed = detector_setup
        single_scaler = FeatureScaler()
        with pytest.raises(ValueError, match="single or per-type"):
            XatuDetector(trace, extractor, models, single_scaler)


@pytest.mark.slow
class TestPerTypePipelineThresholds:
    def test_registry_thresholds_set_after_run(self):
        from repro.core import PipelineConfig, TrainConfig, XatuPipeline
        from tests.conftest import small_model_config, small_scenario

        config = PipelineConfig(
            scenario=small_scenario(),
            model=small_model_config(),
            train=TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3),
            overhead_bound=0.25,
            per_type=True,
            min_events_per_type=4,
        )
        pipeline = XatuPipeline(config)
        result = pipeline.run()
        # Every entry that serves at least one customer got a calibrated
        # threshold strictly inside (0, 1).
        for key, entry in pipeline.registry.entries.items():
            assert 0.0 < entry.threshold < 1.0
        assert 0.0 <= result.effectiveness.median <= 1.0
