"""Tests for campaign shape knobs and echo (correlated) attacks."""

import numpy as np
import pytest

from repro.synth import Campaign, CampaignConfig, IspWorld, ScenarioConfig, TraceGenerator, WorldConfig


def base_scenario(**overrides):
    defaults = dict(
        total_days=10, minutes_per_day=100, prep_days=1.5,
        n_customers=6, n_botnets=2, botnet_size=60, seed=9,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestScenarioCampaignKnobs:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            base_scenario(attacks_per_campaign=0)
        with pytest.raises(ValueError):
            base_scenario(target_group_size=0)
        with pytest.raises(ValueError):
            base_scenario(echo_probability=1.5)

    def test_attacks_per_campaign_scales_event_count(self):
        few = TraceGenerator(base_scenario(attacks_per_campaign=1.0)).materialize()
        many = TraceGenerator(base_scenario(attacks_per_campaign=12.0)).materialize()
        assert len(many.events) > len(few.events)

    def test_echo_probability_zero_disables_echoes(self):
        scenario = base_scenario(echo_probability=0.0)
        config = scenario.campaign_config()
        assert config.echo_probability == 0.0
        trace = TraceGenerator(scenario).materialize()
        # Without echoes, no two events of a campaign start within the echo
        # delay range on different customers.
        by_campaign: dict[int, list] = {}
        for e in trace.events:
            by_campaign.setdefault(e.campaign_id, []).append(e)
        for events in by_campaign.values():
            events.sort(key=lambda e: e.onset)
            for a, b in zip(events, events[1:]):
                if a.customer_id != b.customer_id:
                    assert b.onset - a.onset > 12 or b.onset - a.onset < 0 or b.onset >= a.end

    def test_target_group_size_limits_targets(self):
        world = IspWorld(WorldConfig(n_customers=8, n_botnets=1, botnet_size=40, seed=2))
        cfg = CampaignConfig(
            prep_days=1, minutes_per_day=100, target_group_size=2,
        )
        campaign = Campaign(0, world.botnets[0], world.customers[:2], cfg, np.random.default_rng(0))
        campaign.plan(1500)
        assert {a.customer_id for a in campaign.attacks} <= {0, 1}


class TestEchoAttacks:
    @pytest.fixture(scope="class")
    def echo_campaign(self):
        world = IspWorld(WorldConfig(n_customers=6, n_botnets=1, botnet_size=40, seed=4))
        cfg = CampaignConfig(
            prep_days=0.5, minutes_per_day=100,
            echo_probability=1.0, attacks_per_campaign_mean=6,
        )
        campaign = Campaign(
            0, world.botnets[0], world.customers[:3], cfg, np.random.default_rng(3)
        )
        campaign.plan(4000)
        return campaign

    def test_echoes_double_attack_count(self, echo_campaign):
        # With echo_probability=1, most primaries spawn an echo (horizon
        # truncation may drop a few).
        n = len(echo_campaign.attacks)
        assert n >= 2
        # Attacks come in (primary, echo) adjacent pairs in plan order.
        primaries = echo_campaign.attacks[0::2]
        echoes = echo_campaign.attacks[1::2]
        for primary, echo in zip(primaries, echoes):
            assert echo.attack_type == primary.attack_type
            assert echo.customer_id != primary.customer_id
            assert 2 <= echo.onset - primary.onset <= 12

    def test_echo_shares_botnet(self, echo_campaign):
        botnets = {a.botnet_id for a in echo_campaign.attacks}
        assert botnets == {0}

    def test_each_attack_has_prep(self, echo_campaign):
        real_preps = [p for p in echo_campaign.preps if not p.aborted]
        assert len(real_preps) == len(echo_campaign.attacks)
        for prep, attack in zip(real_preps, echo_campaign.attacks):
            assert prep.end == attack.onset
            assert prep.customer_id == attack.customer_id


class TestPresets:
    def test_all_presets_generate_valid_scenarios(self):
        from repro.eval import bench_scenario, full_scenario, tiny_scenario

        for factory in (tiny_scenario, bench_scenario, full_scenario):
            scenario = factory(seed=1)
            assert scenario.horizon_minutes > scenario.prep_minutes

    def test_bench_model_config_validates(self):
        from repro.eval import bench_model_config

        config = bench_model_config()
        config.validate()
        assert config.n_features == 273

    def test_bench_pipeline_config_assembles(self):
        from repro.eval import bench_pipeline_config

        config = bench_pipeline_config(overhead_bound=0.2, epochs=2)
        assert config.overhead_bound == 0.2
        assert config.train.epochs == 2
        config.model.validate()
