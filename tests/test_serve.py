"""The sharded, checkpointable serving engine (repro.serve).

The three guarantees the engine sells, each asserted here:

* **shard-count invariance** — the merged alert stream is identical for
  any shard count (incumbent alerts are broadcast, history/graph stores
  are global);
* **crash equivalence** — a run killed and restored from a checkpoint
  emits the same alerts *and* the same final checkpoint bytes as a run
  that never stopped;
* **graceful degradation** — feed loss and shard failures degrade the
  output, never the process.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import OnlineXatu, XatuModel
from repro.core.online import OnlineAlert
from repro.netflow import DatagramCodec, FlowRecord, RouteTable
from repro.serve import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointFormatError,
    ServeConfig,
    ServeEngine,
    ShardFailure,
    ShardWorker,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.signals import FeatureScaler
from repro.signals.history import AlertRecord
from repro.synth.attacks import AttackType
from tests.conftest import small_model_config

N_CUSTOMERS = 6
ADDRESS_OF = {50_000 + i: i for i in range(N_CUSTOMERS)}  # addr -> customer


# ----------------------------------------------------------------------
# workload + factories
# ----------------------------------------------------------------------
def _minutes_of_flows(n_minutes: int, seed: int = 7) -> list[list[FlowRecord]]:
    """A deterministic synthetic feed: every customer, every minute."""
    rng = np.random.default_rng(seed)
    return [
        [
            FlowRecord(
                timestamp=minute,
                src_addr=int(rng.integers(1, 2**31)),
                dst_addr=address,
                src_port=int(rng.integers(1024, 65535)),
                dst_port=443,
                protocol=6,
                packets=int(rng.integers(1, 40)),
                bytes_=int(rng.integers(200, 40_000)),
            )
            for address in ADDRESS_OF
            for _ in range(2)
        ]
        for minute in range(n_minutes)
    ]


def _xatu_factory(threshold: float = 0.9):
    """A deterministic OnlineXatu factory: same weights for every call."""
    route_table = RouteTable()
    route_table.announce((0, 2**32 - 1), origin_asn=1)
    config = small_model_config()

    def factory(partition):
        scaler = FeatureScaler()
        scaler.mean_ = np.zeros(273)
        scaler.std_ = np.ones(273)
        model = XatuModel(config)
        model.eval()
        return OnlineXatu(
            model=model,
            scaler=scaler,
            threshold=threshold,
            customer_of=partition,
            blocklist=set(),
            route_table=route_table,
        )

    return factory


class StubDetector:
    """Protocol-shaped deterministic detector: one alert per flow."""

    def __init__(self, partition, fail_at=None):
        self.partition = dict(partition)
        self.minute = -1
        self.cdet_seen = []
        self.ends_seen = []
        self.fail_at = fail_at

    def ingest_cdet_alert(self, record):
        self.cdet_seen.append(record.customer_id)

    def ingest_mitigation_end(self, customer_id, minute):
        self.ends_seen.append((customer_id, minute))

    def step(self, minute, flows):
        if self.fail_at is not None and minute >= self.fail_at:
            raise RuntimeError("induced shard failure")
        self.minute = minute
        return [
            OnlineAlert(self.partition[f.dst_addr], minute, 0.25)
            for f in flows
            if f.dst_addr in self.partition
        ]

    def state_dict(self):
        return {"minute": self.minute}

    def load_state_dict(self, state):
        self.minute = state["minute"]

    def reset(self):
        self.minute = -1


def _stub_engine(shards=2, fail_at=None, **config_kwargs) -> ServeEngine:
    return ServeEngine(
        lambda partition: StubDetector(partition, fail_at=fail_at),
        ADDRESS_OF,
        ServeConfig(shards=shards, **config_kwargs),
    )


def _cdet_record(customer_id: int, minute: int) -> AlertRecord:
    return AlertRecord(
        customer_id=customer_id,
        attack_type=AttackType.TCP_SYN,
        detect_minute=minute,
        end_minute=minute + 5,
        peak_bytes=1e6,
        attackers=frozenset({11, 12}),
    )


def _drive(engine, codec, minutes, start=0, cdet_at=()):
    """Feed encoded datagrams minute-by-minute; returns alert tuples.

    The codec is passed in (not rebuilt) because exporters do not restart
    when the engine does — their flow sequence must run on across an
    engine restore for the feed-health accounting to stay truthful.
    """
    alerts = []
    for offset, flows in enumerate(minutes):
        minute = start + offset
        engine.ingest_datagram(codec.encode(flows, unix_secs=minute * 60))
        if minute in cdet_at:
            engine.ingest_cdet_alert(_cdet_record(0, minute))
        alerts.extend(
            (a.minute, a.customer_id, a.survival) for a in engine.tick(minute)
        )
    return alerts


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_validate(self):
        ServeConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"backend": "coroutine"},
            {"checkpoint_every": -1},
            {"degraded_loss_rate": 1.5},
            {"degradation_policy": "panic"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs).validate()

    def test_engine_validates_config(self):
        with pytest.raises(ValueError):
            _stub_engine(shards=0)


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def test_round_trip(self, tmp_path):
        shard_states = [{"minute": 9, "k": [1, 2]}, {"minute": 9}]
        engine_state = {"minute": 9, "pending": []}
        path = write_checkpoint(tmp_path, 9, shard_states, engine_state)
        assert path.name == "ckpt-00000009"
        minute, shards, engine = read_checkpoint(path)
        assert (minute, shards, engine) == (9, shard_states, engine_state)

    def test_latest_pointer_and_listing(self, tmp_path):
        write_checkpoint(tmp_path, 3, [{}], {})
        newest = write_checkpoint(tmp_path, 7, [{}], {})
        assert latest_checkpoint(tmp_path) == newest
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "ckpt-00000003",
            "ckpt-00000007",
        ]
        # reading the root resolves through LATEST
        minute, _, _ = read_checkpoint(tmp_path)
        assert minute == 7

    def test_future_format_version_is_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, [{}], {})
        manifest_path = path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointFormatError):
            read_checkpoint(path)

    def test_empty_root_has_no_latest(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert list_checkpoints(tmp_path) == []


# ----------------------------------------------------------------------
# engine mechanics (stub detector, inline backend)
# ----------------------------------------------------------------------
class TestEngineMechanics:
    def test_merged_stream_is_ordered_and_routed(self):
        with _stub_engine(shards=3) as engine:
            flows = _minutes_of_flows(1)[0]
            stray = FlowRecord(
                timestamp=0, src_addr=1, dst_addr=999, src_port=1, dst_port=2,
                protocol=6, packets=1, bytes_=10,
            )
            engine.ingest_flows(flows + [stray])
            alerts = engine.tick(0)
            # every routed flow alerted (stub), none for the unknown address
            assert len(alerts) == len(flows)
            keys = [(a.minute, a.customer_id) for a in alerts]
            assert keys == sorted(keys)
            assert all(a.customer_id in range(N_CUSTOMERS) for a in alerts)
            # poll_alerts drains the same stream exactly once
            assert [(a.minute, a.customer_id) for a in engine.poll_alerts()] == keys
            assert engine.poll_alerts() == []

    def test_minutes_must_advance(self):
        with _stub_engine() as engine:
            engine.tick(5)
            with pytest.raises(ValueError, match="advance"):
                engine.tick(5)

    def test_closed_engine_refuses_ticks(self):
        engine = _stub_engine()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.tick(0)

    def test_cdet_alerts_broadcast_to_every_shard(self):
        with _stub_engine(shards=3) as engine:
            engine.ingest_cdet_alert(_cdet_record(4, 0))
            engine.ingest_mitigation_end(4, 2)
            engine.tick(0)
            for shard in engine.shards:
                assert shard._detector.cdet_seen == [4]
                assert shard._detector.ends_seen == [(4, 2)]

    def test_restore_rejects_shard_count_mismatch(self, tmp_path):
        with _stub_engine(shards=2, checkpoint_dir=tmp_path) as engine:
            engine.tick(0)
            engine.checkpoint()
        with _stub_engine(shards=3, checkpoint_dir=tmp_path) as engine:
            with pytest.raises(ValueError, match="shards"):
                engine.restore()

    def test_periodic_checkpoints(self, tmp_path):
        with _stub_engine(
            shards=1, checkpoint_dir=tmp_path, checkpoint_every=2
        ) as engine:
            for minute in range(6):
                engine.tick(minute)
            assert engine.stats()["checkpoints_written"] == 3
        assert len(list_checkpoints(tmp_path)) == 3


# ----------------------------------------------------------------------
# degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def _run_with_loss(self, engine):
        """Three minutes of feed with the middle datagram dropped."""
        codec = DatagramCodec(engine_id=1)
        minutes = _minutes_of_flows(3)
        alerts = []
        for minute, flows in enumerate(minutes):
            blob = codec.encode(flows, unix_secs=minute * 60)
            if minute != 1:  # minute 1's datagram is lost in transit
                engine.ingest_datagram(blob)
            alerts.extend(
                (a.minute, a.customer_id) for a in engine.tick(minute)
            )
        return alerts

    def test_flag_policy_keeps_alerting(self):
        with _stub_engine(shards=2, degraded_loss_rate=0.05) as engine:
            alerts = self._run_with_loss(engine)
            stats = engine.stats()
        assert stats["degraded_minutes"] > 0
        assert stats["alerts_suppressed"] == 0
        assert alerts  # flagged, not muzzled
        assert engine.feed_health().loss_rate > 0.05

    def test_suppress_policy_withholds_alerts_but_state_advances(self):
        with _stub_engine(
            shards=2, degraded_loss_rate=0.05, degradation_policy="suppress"
        ) as engine:
            alerts = self._run_with_loss(engine)
            stats = engine.stats()
            # minute 0 (clean feed) alerted normally; minute 1's flows were
            # lost with the datagram, and by minute 2 the tracker has seen
            # the sequence gap, so its alerts are suppressed
            assert {a[0] for a in alerts} == {0}
            assert stats["alerts_suppressed"] > 0
            # the shards still observed every minute
            for shard in engine.shards:
                assert shard._detector.minute == 2

    def test_failed_shard_degrades_not_crashes(self):
        with _stub_engine(shards=2, fail_at=1) as engine:
            engine.ingest_flows(_minutes_of_flows(1)[0])
            assert engine.tick(0)
            assert all(engine.shard_health().values())
            engine.ingest_flows(_minutes_of_flows(1)[0])
            engine.tick(1)  # both shards raise, engine survives
            assert not any(engine.shard_health().values())
            assert engine.tick(2) == []  # still serving, nothing to score with
            assert engine.stats()["healthy_shards"] == 0


# ----------------------------------------------------------------------
# shard workers
# ----------------------------------------------------------------------
class TestShardWorker:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShardWorker(0, lambda: StubDetector({}), backend="fiber")

    def test_failure_marks_unhealthy_and_refuses_submits(self):
        worker = ShardWorker(0, lambda: StubDetector({}, fail_at=0))
        with pytest.raises(ShardFailure, match="induced"):
            worker.step(0, [])
        assert not worker.healthy
        with pytest.raises(ShardFailure, match="unhealthy"):
            worker.submit_step(1, [])
        worker.close()

    def test_collect_without_submit_fails(self):
        worker = ShardWorker(0, lambda: StubDetector({}))
        with pytest.raises(ShardFailure, match="no pending"):
            worker.collect()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_remote_backends_match_inline(self, backend):
        """state/step/reset round-trip through the worker protocol."""
        partition = dict(ADDRESS_OF)
        inline = ShardWorker(0, lambda: StubDetector(partition))
        remote = ShardWorker(0, lambda: StubDetector(partition), backend=backend)
        try:
            flows = _minutes_of_flows(2)
            for minute in range(2):
                a = inline.step(minute, flows[minute])
                b = remote.step(minute, flows[minute])
                assert [(x.minute, x.customer_id) for x in a] == [
                    (x.minute, x.customer_id) for x in b
                ]
            assert inline.state_dict() == remote.state_dict()
            remote.reset()
            assert remote.state_dict() == {"minute": -1}
        finally:
            remote.close()


class TestGradModeIsolation:
    """The thread backend scores under no_grad concurrently; the grad
    switch must be per-thread or one worker's restore clobbers another's
    (leaving gradients disabled process-wide)."""

    def test_no_grad_is_thread_local(self):
        import threading

        from repro.nn.autograd import is_grad_enabled, no_grad

        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with no_grad():
                seen["inside"] = is_grad_enabled()
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert entered.wait(5)
        # the worker holds no_grad right now; this thread is unaffected
        assert is_grad_enabled()
        release.set()
        thread.join(5)
        assert seen["inside"] is False
        assert is_grad_enabled()


# ----------------------------------------------------------------------
# the real detector: invariance, backends, crash equivalence
# ----------------------------------------------------------------------
def _xatu_engine(
    shards, backend="inline", checkpoint_dir=None, threshold=0.9, batched=True
):
    return ServeEngine(
        _xatu_factory(threshold),
        ADDRESS_OF,
        ServeConfig(
            shards=shards,
            backend=backend,
            checkpoint_dir=checkpoint_dir,
            batched=batched,
        ),
    )


MINUTES = 12
RESTART_AT = 5


class TestShardCountInvariance:
    def test_merged_stream_identical_for_any_shard_count(self):
        streams = {}
        for shards in (1, 2, 3):
            with _xatu_engine(shards) as engine:
                streams[shards] = _drive(
                    engine, DatagramCodec(engine_id=1),
                    _minutes_of_flows(MINUTES), cdet_at={3},
                )
        assert streams[1] == streams[2] == streams[3]
        assert streams[1], "the workload should produce alerts"


class TestBackendEquivalence:
    def test_thread_and_process_match_inline(self):
        streams = {}
        for backend in ("inline", "thread", "process"):
            with _xatu_engine(2, backend=backend) as engine:
                streams[backend] = _drive(
                    engine, DatagramCodec(engine_id=1), _minutes_of_flows(6),
                )
        assert streams["inline"] == streams["thread"] == streams["process"]


class TestCrashEquivalence:
    def test_restored_run_matches_uninterrupted_run(self, tmp_path):
        minutes = _minutes_of_flows(MINUTES)

        # the run that never stops
        with _xatu_engine(2, checkpoint_dir=tmp_path / "base") as engine:
            baseline = _drive(engine, DatagramCodec(engine_id=1), minutes, cdet_at={3})
            engine.checkpoint()

        # the run that crashes after RESTART_AT and restores
        codec = DatagramCodec(engine_id=1)
        ckpt_dir = tmp_path / "crash"
        engine = _xatu_engine(2, checkpoint_dir=ckpt_dir)
        restarted = _drive(engine, codec, minutes[: RESTART_AT + 1], cdet_at={3})
        engine.checkpoint()
        engine.close()

        engine = _xatu_engine(2, checkpoint_dir=ckpt_dir)
        assert engine.restore() == RESTART_AT
        assert engine.current_minute == RESTART_AT
        restarted += _drive(
            engine, codec, minutes[RESTART_AT + 1 :], start=RESTART_AT + 1
        )
        engine.checkpoint()
        engine.close()

        assert baseline, "the workload should produce alerts"
        assert restarted == baseline

        # the recovery guarantee is byte-level: both final checkpoints
        # contain identical files
        base_path = latest_checkpoint(tmp_path / "base")
        crash_path = latest_checkpoint(ckpt_dir)
        assert base_path.name == crash_path.name
        for name in ("MANIFEST.json", "engine.pkl", "shard-00.pkl", "shard-01.pkl"):
            assert (base_path / name).read_bytes() == (
                crash_path / name
            ).read_bytes(), name


class TestBatchedLaneServe:
    """The batched lane through the full engine: equivalence + durability.

    ``ServeConfig.batched`` defaults to True, so every other engine test
    already runs the batched lane; these tests pin the cross-lane
    guarantees — byte-identical streams and checkpoints against the
    per-customer oracle, including across a kill-and-restore and across a
    restore that flips the lane.
    """

    def _checkpoint_bytes(self, root) -> dict[str, bytes]:
        path = latest_checkpoint(root)
        return {
            name: (path / name).read_bytes()
            for name in ("MANIFEST.json", "engine.pkl", "shard-00.pkl", "shard-01.pkl")
        }

    def test_lanes_byte_identical_through_engine(self, tmp_path):
        minutes = _minutes_of_flows(MINUTES)
        streams, checkpoints = {}, {}
        for lane in (True, False):
            root = tmp_path / f"lane-{lane}"
            with _xatu_engine(2, checkpoint_dir=root, batched=lane) as engine:
                streams[lane] = _drive(
                    engine, DatagramCodec(engine_id=1), minutes, cdet_at={3}
                )
                engine.checkpoint()
            checkpoints[lane] = self._checkpoint_bytes(root)
        assert streams[True], "the workload should produce alerts"
        assert streams[True] == streams[False]
        assert checkpoints[True] == checkpoints[False]

    def test_batched_kill_and_restore_matches_per_customer_baseline(self, tmp_path):
        minutes = _minutes_of_flows(MINUTES)

        # per-customer oracle, never interrupted
        with _xatu_engine(
            2, checkpoint_dir=tmp_path / "oracle", batched=False
        ) as engine:
            baseline = _drive(engine, DatagramCodec(engine_id=1), minutes, cdet_at={3})
            engine.checkpoint()

        # batched lane, killed at RESTART_AT and restored
        codec = DatagramCodec(engine_id=1)
        root = tmp_path / "batched-crash"
        engine = _xatu_engine(2, checkpoint_dir=root, batched=True)
        restarted = _drive(engine, codec, minutes[: RESTART_AT + 1], cdet_at={3})
        engine.checkpoint()
        engine.close()

        engine = _xatu_engine(2, checkpoint_dir=root, batched=True)
        assert engine.restore() == RESTART_AT
        restarted += _drive(
            engine, codec, minutes[RESTART_AT + 1 :], start=RESTART_AT + 1
        )
        engine.checkpoint()
        engine.close()

        assert baseline, "the workload should produce alerts"
        assert restarted == baseline
        assert self._checkpoint_bytes(tmp_path / "oracle") == self._checkpoint_bytes(
            root
        )

    @pytest.mark.parametrize(
        "first_lane,second_lane", [(True, False), (False, True)]
    )
    def test_lane_flip_across_restart_boundary(self, tmp_path, first_lane, second_lane):
        minutes = _minutes_of_flows(MINUTES)

        with _xatu_engine(
            2, checkpoint_dir=tmp_path / "base", batched=True
        ) as engine:
            baseline = _drive(engine, DatagramCodec(engine_id=1), minutes, cdet_at={3})
            engine.checkpoint()

        # first_lane until the restart, then the opposite lane to the end:
        # checkpoints carry no lane state, so the flip must be invisible.
        codec = DatagramCodec(engine_id=1)
        root = tmp_path / "flip"
        engine = _xatu_engine(2, checkpoint_dir=root, batched=first_lane)
        flipped = _drive(engine, codec, minutes[: RESTART_AT + 1], cdet_at={3})
        engine.checkpoint()
        engine.close()

        engine = _xatu_engine(2, checkpoint_dir=root, batched=second_lane)
        assert engine.restore() == RESTART_AT
        flipped += _drive(
            engine, codec, minutes[RESTART_AT + 1 :], start=RESTART_AT + 1
        )
        engine.checkpoint()
        engine.close()

        assert flipped == baseline
        assert self._checkpoint_bytes(tmp_path / "base") == self._checkpoint_bytes(root)


class TestOnlineStateRoundTrip:
    def test_state_dict_round_trips_byte_identically(self):
        factory = _xatu_factory()
        route_table = RouteTable()
        route_table.announce((0, 2**32 - 1), origin_asn=1)
        minutes = _minutes_of_flows(8)

        online = factory(ADDRESS_OF)
        for minute in range(4):
            online.step(minute, minutes[minute])
        online.ingest_cdet_alert(_cdet_record(2, 3))
        state = online.state_dict()

        clone = OnlineXatu.from_state_dict(state, route_table)
        assert pickle.dumps(clone.state_dict(), protocol=4) == pickle.dumps(
            state, protocol=4
        )

        # and the clone continues exactly where the original would
        for minute in range(4, 8):
            original_alerts = online.step(minute, minutes[minute])
            clone_alerts = clone.step(minute, minutes[minute])
            assert [(a.minute, a.customer_id, a.survival) for a in original_alerts] == [
                (a.minute, a.customer_id, a.survival) for a in clone_alerts
            ]
        assert pickle.dumps(clone.state_dict(), protocol=4) == pickle.dumps(
            online.state_dict(), protocol=4
        )
