"""Tests for the scenario compression / model scaling helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import PAPER_SCENARIO, compress_scenario, scale_model_for
from repro.synth import ScenarioConfig


class TestCompressScenario:
    def test_identity_at_factor_one(self):
        out = compress_scenario(PAPER_SCENARIO, time_factor=1.0)
        assert out == PAPER_SCENARIO

    def test_prep_ratio_preserved(self):
        out = compress_scenario(PAPER_SCENARIO, time_factor=12.0)
        assert out.prep_days == PAPER_SCENARIO.prep_days
        assert out.total_days == PAPER_SCENARIO.total_days
        # Ratio of prep window to full horizon is unchanged.
        paper_ratio = PAPER_SCENARIO.prep_minutes / PAPER_SCENARIO.horizon_minutes
        replica_ratio = out.prep_minutes / out.horizon_minutes
        assert replica_ratio == pytest.approx(paper_ratio)

    def test_size_factor_scales_populations(self):
        out = compress_scenario(PAPER_SCENARIO, time_factor=1.0, size_factor=50.0)
        assert out.n_customers == 20
        assert out.botnet_size == 40

    def test_minutes_floor_respected(self):
        out = compress_scenario(PAPER_SCENARIO, time_factor=10_000.0)
        assert out.minutes_per_day >= 30

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            compress_scenario(PAPER_SCENARIO, time_factor=0.5)

    @settings(max_examples=20, deadline=None)
    @given(factor=st.floats(1.0, 100.0))
    def test_horizon_shrinks_monotonically(self, factor):
        out = compress_scenario(PAPER_SCENARIO, time_factor=factor)
        assert out.horizon_minutes <= PAPER_SCENARIO.horizon_minutes


class TestScaleModelFor:
    def test_valid_config_for_bench_scenario(self):
        scenario = ScenarioConfig(
            total_days=16, minutes_per_day=120, prep_days=2,
        )
        config = scale_model_for(scenario)
        config.validate()
        assert config.lookback_minutes <= max(scenario.prep_minutes, 30) + 1

    def test_long_scale_spans_lookback(self):
        scenario = ScenarioConfig(total_days=16, minutes_per_day=120, prep_days=2)
        config = scale_model_for(scenario)
        assert config.timescales[-1].minutes >= scenario.prep_minutes * 0.5

    def test_first_scale_is_minutewise(self):
        config = scale_model_for(ScenarioConfig(minutes_per_day=120, prep_days=2))
        assert config.timescales[0].window == 1
        assert config.timescales[0].span >= config.detect_window

    def test_single_scale_variant(self):
        config = scale_model_for(
            ScenarioConfig(minutes_per_day=120, prep_days=2), n_scales=1
        )
        assert len(config.timescales) == 1
        config.validate()

    def test_paper_scale_config_valid(self):
        config = scale_model_for(PAPER_SCENARIO, hidden_size=200, detect_window=30)
        config.validate()
        assert config.detect_window == 30
        assert config.hidden_size == 200

    def test_zero_scales_rejected(self):
        with pytest.raises(ValueError):
            scale_model_for(PAPER_SCENARIO, n_scales=0)

    def test_model_trains_on_scaled_config(self, rng):
        """End-to-end: a scaled config produces a working model."""
        from repro.core import XatuModel

        scenario = ScenarioConfig(total_days=8, minutes_per_day=60, prep_days=1)
        config = scale_model_for(scenario, hidden_size=4, dense_size=4)
        model = XatuModel(config)
        x = rng.normal(size=(2, config.lookback_minutes, config.n_features))
        hazards = model.hazards_np(x)
        assert hazards.shape == (2, config.detect_window)
