"""Unit tests for the CDet simulators' threshold machinery."""

import numpy as np
import pytest

from repro.detect import FastNetMonDetector, NetScoutDetector
from repro.detect.entropy import EntropyDetector


class TestNetScoutThresholds:
    def test_threshold_constant_over_series(self, trace):
        detector = NetScoutDetector()
        series = trace.matrix.bytes_series(0, 0, trace.horizon)
        thresholds = detector._threshold_series(series, trace, 0)
        assert len(np.unique(thresholds)) == 1

    def test_headroom_scales_threshold(self, trace):
        series = trace.matrix.bytes_series(0, 0, trace.horizon)
        low = NetScoutDetector(headroom=1.5)._threshold_series(series, trace, 0)
        high = NetScoutDetector(headroom=3.0)._threshold_series(series, trace, 0)
        assert high[0] == pytest.approx(2.0 * low[0])

    def test_profile_window_limits_quantile_data(self, trace):
        series = trace.matrix.bytes_series(0, 0, trace.horizon)
        windowed = NetScoutDetector(profile_window=60)._threshold_series(series, trace, 0)
        expected = np.quantile(series[:60], 0.99) * 2.0
        assert windowed[0] == pytest.approx(expected)


class TestFastNetMonThresholds:
    def test_attack_does_not_poison_baseline(self):
        """A huge excursion must not drag the adaptive threshold up with it."""
        rng = np.random.default_rng(0)
        quiet = rng.normal(100.0, 5.0, 300)
        flood = np.full(30, 100000.0)
        series = np.concatenate([quiet, flood, quiet])

        class FakeTrace:
            pass

        detector = FastNetMonDetector()
        thresholds = detector._threshold_series(series, FakeTrace(), 0)
        # After the flood, the threshold returns near its pre-flood level.
        pre = thresholds[290]
        post = thresholds[-1]
        assert post < 5 * pre

    def test_threshold_lags_traffic(self):
        """Today's spike cannot raise today's bar (detection stays possible)."""
        series = np.concatenate([np.full(100, 100.0), np.full(5, 10000.0)])

        class FakeTrace:
            pass

        thresholds = FastNetMonDetector()._threshold_series(series, FakeTrace(), 0)
        assert (series[100:] > thresholds[100:]).all()

    def test_floor_prevents_zero_threshold(self):
        series = np.zeros(50)

        class FakeTrace:
            pass

        thresholds = FastNetMonDetector()._threshold_series(series, FakeTrace(), 0)
        assert (thresholds > 0).all()


class TestEntropyInternals:
    def test_deviation_flags_quiet_series_silent(self, rng):
        detector = EntropyDetector()
        entropy = rng.normal(3.0, 0.02, 500)
        flags = detector._deviation_flags(entropy)
        assert flags.mean() < 0.05

    def test_deviation_flags_fire_on_shift(self, rng):
        detector = EntropyDetector()
        entropy = np.concatenate([
            rng.normal(3.0, 0.02, 300), rng.normal(1.5, 0.02, 50)
        ])
        flags = detector._deviation_flags(entropy)
        assert flags[300:].mean() > 0.9

    def test_flagged_minutes_do_not_update_profile(self, rng):
        """The EWMA profile freezes during excursions (no self-poisoning)."""
        detector = EntropyDetector()
        entropy = np.concatenate([
            rng.normal(3.0, 0.02, 300),
            np.full(100, 0.5),
            rng.normal(3.0, 0.02, 100),
        ])
        flags = detector._deviation_flags(entropy)
        # The quiet tail must NOT be flagged: the profile stayed at ~3.
        assert flags[420:].mean() < 0.1
