"""Unit tests for the CART tree and random forest baseline."""

import numpy as np
import pytest

from repro.forest import (
    DecisionTreeClassifier,
    GridSearchResult,
    RandomForestClassifier,
    grid_search,
)


def linearly_separable(rng, n=200, d=4):
    x = rng.normal(size=(n, d))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
    return x, y


def xor_data(rng, n=400):
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
    return x, y


class TestDecisionTree:
    def test_perfect_fit_on_separable(self, rng):
        x, y = linearly_separable(rng)
        tree = DecisionTreeClassifier(max_depth=8).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.98

    def test_xor_needs_depth_two(self, rng):
        x, y = xor_data(rng)
        shallow = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert (deep.predict(x) == y).mean() > (shallow.predict(x) == y).mean()

    def test_pure_node_becomes_leaf(self, rng):
        x = rng.normal(size=(50, 3))
        y = np.ones(50)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict_proba(x) == pytest.approx(np.ones(50))

    def test_max_depth_respected(self, rng):
        x, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        x, y = linearly_separable(rng, n=20)
        tree = DecisionTreeClassifier(min_samples_leaf=8).fit(x, y)
        # With 20 samples and leaves >= 8, at most one split is possible.
        assert tree.depth() <= 2

    def test_probabilities_in_unit_interval(self, rng):
        x, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        probs = tree.predict_proba(x)
        assert ((0 <= probs) & (probs <= 1)).all()

    def test_single_row_prediction(self, rng):
        x, y = linearly_separable(rng)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.predict_proba(x[0]).shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 3)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 3)), np.zeros(0))

    def test_misaligned_xy_rejected(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(rng.normal(size=(5, 2)), np.zeros(4))

    def test_bad_max_depth_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_constant_features_single_leaf(self):
        x = np.ones((30, 3))
        y = np.concatenate([np.ones(15), np.zeros(15)])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict_proba(x)[0] == pytest.approx(0.5)

    def test_max_features_sqrt(self, rng):
        x, y = linearly_separable(rng, d=16)
        tree = DecisionTreeClassifier(max_features="sqrt", rng=rng).fit(x, y)
        assert tree.node_count > 1


class TestRandomForest:
    def test_forest_beats_stump_on_xor(self, rng):
        x, y = xor_data(rng)
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        forest = RandomForestClassifier(n_estimators=20, max_depth=5, seed=1).fit(x, y)
        assert (forest.predict(x) == y).mean() > (stump.predict(x) == y).mean()

    def test_deterministic_given_seed(self, rng):
        x, y = linearly_separable(rng)
        a = RandomForestClassifier(n_estimators=5, seed=42).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, seed=42).fit(x, y)
        assert a.predict_proba(x) == pytest.approx(b.predict_proba(x))

    def test_probability_is_tree_average(self, rng):
        x, y = linearly_separable(rng)
        forest = RandomForestClassifier(n_estimators=7, seed=0).fit(x, y)
        manual = np.mean([t.predict_proba(x) for t in forest.trees_], axis=0)
        assert forest.predict_proba(x) == pytest.approx(manual)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_zero_estimators_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((0, 2)), np.zeros(0))


class TestGridSearch:
    def test_returns_fitted_winner(self, rng):
        x, y = xor_data(rng, n=300)
        split = 200
        forest, result = grid_search(
            x[:split], y[:split], x[split:], y[split:],
            param_grid={"n_estimators": [5], "max_depth": [2, 6]},
        )
        assert isinstance(result, GridSearchResult)
        assert result.n_evaluated == 2
        assert result.params["max_depth"] == 6
        assert (forest.predict(x) == y).mean() > 0.8
