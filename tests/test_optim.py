"""Unit tests for SGD, Adam, and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, clip_grad_norm


def quadratic_step(opt, param, target):
    opt.zero_grad()
    loss = ((param - target) ** 2).sum()
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        target = Tensor(np.array([1.0, 2.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, p, target)
        assert p.numpy() == pytest.approx([1.0, 2.0], abs=1e-4)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Tensor(np.array([10.0]), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                last = quadratic_step(opt, p, Tensor(np.array([0.0])))
            losses[momentum] = last
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert p.numpy()[0] < 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor(1.0, requires_grad=True)], lr=0.0)

    def test_none_grad_skipped(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()  # no backward() yet
        assert p.numpy()[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_step(opt, p, Tensor(np.array([1.0, 2.0])))
        assert p.numpy() == pytest.approx([1.0, 2.0], abs=1e-3)

    def test_bias_correction_first_step_size(self):
        """First Adam step moves by ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            p = Tensor(np.array([0.0]), requires_grad=True)
            opt = Adam([p], lr=0.1)
            opt.zero_grad()
            (p * scale).sum().backward()
            opt.step()
            assert abs(p.numpy()[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor(1.0, requires_grad=True)], betas=(1.0, 0.9))

    def test_weight_decay_applied(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert p.numpy()[0] < 2.0


class TestClipGradNorm:
    def test_returns_preclip_norm(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        p.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(5.0)
        assert p.grad == pytest.approx([3.0, 4.0, 0.0])  # under the cap

    def test_scales_down_when_over(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_over_multiple_params(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_ignores_none_grads(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        assert clip_grad_norm([a], max_norm=1.0) == 0.0
