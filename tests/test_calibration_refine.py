"""Tests for the calibration bisection refinement."""

import numpy as np
import pytest

from repro.survival import ThresholdCalibrator


def monotone_evaluate(threshold: float):
    """Effectiveness and overhead both rise with the threshold."""
    return min(1.0, 0.3 + threshold), np.full(4, threshold * 0.4)


class TestRefinement:
    def test_refined_threshold_closer_to_boundary(self):
        bound = 0.1  # feasible iff threshold <= 0.25
        coarse = ThresholdCalibrator(thresholds=[0.1, 0.5, 0.9]).calibrate(
            monotone_evaluate, bound
        )
        fine = ThresholdCalibrator(
            thresholds=[0.1, 0.5, 0.9], refine_steps=6
        ).calibrate(monotone_evaluate, bound)
        assert coarse.threshold == 0.1
        assert fine.threshold > coarse.threshold
        assert fine.threshold <= 0.25 + 1e-9
        assert fine.effectiveness > coarse.effectiveness

    def test_refined_result_stays_feasible(self):
        fine = ThresholdCalibrator(refine_steps=8).calibrate(
            monotone_evaluate, overhead_bound=0.17
        )
        assert fine.feasible
        assert fine.overhead_p75 <= 0.17 + 1e-9

    def test_zero_steps_identical_to_grid(self):
        grid = ThresholdCalibrator(thresholds=[0.2, 0.6]).calibrate(
            monotone_evaluate, 0.1
        )
        same = ThresholdCalibrator(thresholds=[0.2, 0.6], refine_steps=0).calibrate(
            monotone_evaluate, 0.1
        )
        assert grid.threshold == same.threshold

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(refine_steps=-1)

    def test_refinement_counts_evaluations(self):
        result = ThresholdCalibrator(
            thresholds=[0.2, 0.6], refine_steps=4
        ).calibrate(monotone_evaluate, 0.1)
        assert result.evaluations == 2 + 4

    def test_best_at_top_of_grid_refines_toward_one(self):
        """When every grid point is feasible, refinement probes above."""

        def always_feasible(threshold):
            return threshold, np.zeros(3)

        result = ThresholdCalibrator(
            thresholds=[0.3, 0.7], refine_steps=5
        ).calibrate(always_feasible, overhead_bound=1.0)
        assert result.threshold > 0.7
