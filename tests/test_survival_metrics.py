"""Unit tests for survival analysis, calibration, and metric primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import auc, percentile_summary, roc_curve
from repro.survival import (
    ThresholdCalibrator,
    detection_time_from_survival,
    hazards_to_survival_np,
    survival_to_event_prob,
)


class TestSurvivalMath:
    def test_survival_matches_formula(self, rng):
        h = np.abs(rng.normal(size=(4, 6)))
        s = hazards_to_survival_np(h)
        assert s == pytest.approx(np.exp(-np.cumsum(h, axis=-1)))

    def test_negative_hazards_rejected(self):
        with pytest.raises(ValueError):
            hazards_to_survival_np(np.array([-0.1, 0.2]))

    def test_event_probs_sum_to_one_minus_final_survival(self, rng):
        h = np.abs(rng.normal(size=8))
        s = hazards_to_survival_np(h)
        p = survival_to_event_prob(s)
        assert p.sum() == pytest.approx(1.0 - s[-1])
        assert (p >= -1e-12).all()

    def test_detection_time_first_crossing(self):
        s = np.array([0.9, 0.8, 0.4, 0.3])
        assert detection_time_from_survival(s, threshold=0.5) == 2

    def test_detection_time_none_when_above(self):
        s = np.array([0.9, 0.8, 0.7])
        assert detection_time_from_survival(s, threshold=0.5) is None

    def test_detection_time_requires_1d(self):
        with pytest.raises(ValueError):
            detection_time_from_survival(np.ones((2, 2)), 0.5)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), steps=st.integers(1, 20))
    def test_survival_monotone_property(self, seed, steps):
        rng = np.random.default_rng(seed)
        s = hazards_to_survival_np(np.abs(rng.normal(size=steps)))
        assert (np.diff(s) <= 1e-12).all()
        assert (0 < s).all() and (s <= 1).all()


class TestThresholdCalibrator:
    @staticmethod
    def toy_evaluate(threshold: float) -> tuple[float, np.ndarray]:
        """Higher threshold -> earlier detection -> more eff, more overhead."""
        effectiveness = min(1.0, 0.4 + threshold)
        overheads = np.full(8, threshold * 0.2)
        return effectiveness, overheads

    def test_picks_best_feasible(self):
        result = ThresholdCalibrator().calibrate(self.toy_evaluate, overhead_bound=0.05)
        assert result.feasible
        assert result.overhead_p75 <= 0.05
        # Best feasible threshold is the largest with 0.2*thr <= 0.05.
        assert result.threshold <= 0.25 + 1e-9
        assert result.threshold >= 0.2

    def test_infeasible_returns_min_overhead(self):
        def impossible(threshold):
            return 1.0, np.full(4, 10.0 + threshold)

        result = ThresholdCalibrator().calibrate(impossible, overhead_bound=0.1)
        assert not result.feasible

    def test_custom_grid_respected(self):
        calls = []

        def spy(threshold):
            calls.append(threshold)
            return 1.0, np.zeros(2)

        ThresholdCalibrator(thresholds=[0.1, 0.5, 0.9]).calibrate(spy, 1.0)
        assert calls == [0.1, 0.5, 0.9]

    def test_grid_bounds_validated(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(thresholds=[0.0, 0.5])
        with pytest.raises(ValueError):
            ThresholdCalibrator(thresholds=[0.5, 1.0])

    def test_tie_break_prefers_lower_overhead(self):
        """Among equally-effective thresholds, the cheaper one wins."""

        def evaluate(threshold):
            return 0.8, np.full(3, threshold * 0.1)

        result = ThresholdCalibrator(thresholds=[0.2, 0.5, 0.8]).calibrate(evaluate, 1.0)
        assert result.threshold == 0.2

    def test_monotone_bound_monotone_threshold(self):
        """Property: looser bounds never pick smaller effectiveness."""
        results = [
            ThresholdCalibrator().calibrate(self.toy_evaluate, bound)
            for bound in (0.01, 0.05, 0.2)
        ]
        effs = [r.effectiveness for r in results]
        assert effs == sorted(effs)


class TestPercentileSummary:
    def test_known_values(self):
        summary = percentile_summary(np.arange(101), 10, 90)
        assert summary.low == pytest.approx(10.0)
        assert summary.median == pytest.approx(50.0)
        assert summary.high == pytest.approx(90.0)
        assert summary.n == 101

    def test_empty_sample(self):
        summary = percentile_summary([])
        assert summary.n == 0
        assert summary.as_tuple() == (0.0, 0.0, 0.0)

    def test_quartile_convention(self):
        summary = percentile_summary([1, 2, 3, 4, 5], 25, 75)
        assert summary.low == 2.0
        assert summary.high == 4.0


class TestRoc:
    def test_perfect_classifier(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        fpr, tpr, _ = roc_curve(scores, labels)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_random_classifier_half_auc(self, rng):
        scores = rng.uniform(size=2000)
        labels = rng.integers(0, 2, size=2000)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.06)

    def test_inverted_classifier_below_half(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        fpr, tpr, _ = roc_curve(scores, labels)
        assert auc(fpr, tpr) == pytest.approx(0.0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0.5, 0.6]), np.array([1, 1]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(3), np.zeros(4))

    def test_curve_starts_origin_ends_corner(self, rng):
        scores = rng.uniform(size=50)
        labels = rng.integers(0, 2, size=50)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_tied_scores_collapsed(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1, 0, 1, 0])
        fpr, tpr, _ = roc_curve(scores, labels)
        assert len(fpr) == 2  # origin + one point
