"""Unit tests for the NetFlow substrate: records, codec, addressing, routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow import (
    BOGON_CIDRS,
    FLOW_WIRE_SIZE,
    FlowRecord,
    Protocol,
    RouteTable,
    SpoofVerdict,
    TcpFlags,
    cidr_to_range,
    decode_flow,
    decode_flows,
    encode_flow,
    encode_flows,
    in_cidr,
    int_to_ip,
    ip_to_int,
    is_bogon,
    subnet24,
    subnet24_str,
)


def make_flow(**overrides) -> FlowRecord:
    base = dict(
        timestamp=12,
        src_addr=ip_to_int("45.1.2.3"),
        dst_addr=ip_to_int("203.1.0.0"),
        src_port=53,
        dst_port=4444,
        protocol=int(Protocol.UDP),
        packets=10,
        bytes_=5120,
    )
    base.update(overrides)
    return FlowRecord(**base)


class TestFlowRecord:
    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            make_flow(packets=-1)

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            make_flow(src_port=70000)

    def test_sampling_rate_minimum(self):
        with pytest.raises(ValueError):
            make_flow(sampling_rate=0)

    def test_estimated_counters_scale_by_rate(self):
        flow = make_flow(sampling_rate=100)
        assert flow.estimated_bytes == 512000
        assert flow.estimated_packets == 1000


class TestCodec:
    def test_roundtrip(self):
        flow = make_flow(tcp_flags=int(TcpFlags.SYN | TcpFlags.ACK), src_country="DE")
        assert decode_flow(encode_flow(flow)) == flow

    def test_wire_size_fixed(self):
        assert len(encode_flow(make_flow())) == FLOW_WIRE_SIZE

    def test_batch_roundtrip(self):
        flows = [make_flow(timestamp=i) for i in range(5)]
        assert decode_flows(encode_flows(flows)) == flows

    def test_empty_batch(self):
        assert decode_flows(encode_flows([])) == []

    def test_truncated_batch_raises(self):
        blob = encode_flows([make_flow()])
        with pytest.raises(ValueError, match="truncated"):
            decode_flows(blob[:-3])

    def test_missing_header_raises(self):
        with pytest.raises(ValueError, match="count header"):
            decode_flows(b"\x01")

    @settings(max_examples=50, deadline=None)
    @given(
        timestamp=st.integers(0, 2**31 - 1),
        src=st.integers(0, 2**32 - 1),
        dst=st.integers(0, 2**32 - 1),
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        proto=st.sampled_from([1, 6, 17]),
        packets=st.integers(0, 2**31 - 1),
        bytes_=st.integers(0, 2**60),
        flags=st.integers(0, 63),
        rate=st.integers(1, 10000),
        country=st.sampled_from(["US", "DE", "CN", "BR"]),
    )
    def test_roundtrip_property(
        self, timestamp, src, dst, sport, dport, proto, packets, bytes_, flags, rate, country
    ):
        flow = FlowRecord(
            timestamp=timestamp, src_addr=src, dst_addr=dst, src_port=sport,
            dst_port=dport, protocol=proto, packets=packets, bytes_=bytes_,
            tcp_flags=flags, src_country=country, sampling_rate=rate,
        )
        assert decode_flow(encode_flow(flow)) == flow


class TestAddressing:
    def test_ip_roundtrip_known(self):
        assert int_to_ip(ip_to_int("192.168.1.1")) == "192.168.1.1"
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    @settings(max_examples=50, deadline=None)
    @given(addr=st.integers(0, 2**32 - 1))
    def test_ip_roundtrip_property(self, addr):
        assert ip_to_int(int_to_ip(addr)) == addr

    def test_bad_ip_raises(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.999")
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    def test_subnet24(self):
        addr = ip_to_int("10.20.30.40")
        assert int_to_ip(subnet24(addr)) == "10.20.30.0"
        assert subnet24_str(addr) == "10.20.30.0/24"

    def test_cidr_range(self):
        lo, hi = cidr_to_range("10.0.0.0/8")
        assert lo == ip_to_int("10.0.0.0")
        assert hi == ip_to_int("10.255.255.255")

    def test_cidr_zero_length_covers_everything(self):
        lo, hi = cidr_to_range("0.0.0.0/0")
        assert (lo, hi) == (0, 0xFFFFFFFF)

    def test_in_cidr(self):
        assert in_cidr(ip_to_int("192.168.5.5"), "192.168.0.0/16")
        assert not in_cidr(ip_to_int("192.169.0.0"), "192.168.0.0/16")

    def test_bad_prefix_length_raises(self):
        with pytest.raises(ValueError):
            cidr_to_range("10.0.0.0/33")


class TestBogons:
    @pytest.mark.parametrize("ip", ["10.1.2.3", "192.168.0.1", "172.16.5.5", "127.0.0.1", "100.64.0.1"])
    def test_known_bogons(self, ip):
        assert is_bogon(ip_to_int(ip))

    @pytest.mark.parametrize("ip", ["8.8.8.8", "45.1.1.1", "203.0.112.1", "172.32.0.1"])
    def test_non_bogons(self, ip):
        assert not is_bogon(ip_to_int(ip))

    def test_all_bogon_cidrs_self_consistent(self):
        for cidr in BOGON_CIDRS:
            lo, hi = cidr_to_range(cidr)
            assert is_bogon(lo) and is_bogon(hi)


class TestRouteTable:
    def make_table(self):
        table = RouteTable()
        table.announce("45.0.0.0/16", origin_asn=100)
        table.announce("46.0.0.0/16", origin_asn=200)
        return table

    def test_lookup_finds_covering_prefix(self):
        table = self.make_table()
        entry = table.lookup(ip_to_int("45.0.5.5"))
        assert entry is not None and entry.origin_asn == 100

    def test_lookup_miss_returns_none(self):
        assert self.make_table().lookup(ip_to_int("47.0.0.1")) is None

    def test_classify_bogon_first(self):
        table = self.make_table()
        assert table.classify_source(ip_to_int("10.0.0.1")) == SpoofVerdict.BOGON

    def test_classify_unrouted(self):
        table = self.make_table()
        assert table.classify_source(ip_to_int("50.0.0.1")) == SpoofVerdict.UNROUTED

    def test_classify_invalid_origin(self):
        table = self.make_table()
        verdict = table.classify_source(ip_to_int("45.0.0.1"), observed_asn=200)
        assert verdict == SpoofVerdict.INVALID_ORIGIN

    def test_customer_cone_allows_member_origin(self):
        table = self.make_table()
        table.add_cone(200, {100})
        verdict = table.classify_source(ip_to_int("45.0.0.1"), observed_asn=200)
        assert verdict == SpoofVerdict.VALID

    def test_valid_without_observed_asn(self):
        table = self.make_table()
        assert table.classify_source(ip_to_int("45.0.0.1")) == SpoofVerdict.VALID
        assert not table.is_spoofed(ip_to_int("45.0.0.1"))

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            RouteTable().announce((10, 5), 1)

    def test_len_counts_entries(self):
        assert len(self.make_table()) == 2
