"""Tests for Appendix-D feature selection and the per-type pipeline mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals import CoverageReport, coverage_by_key, select_covering
from tests.test_netflow import make_flow


class TestCoverage:
    def make_flows(self):
        return [
            make_flow(src_port=443, bytes_=700),
            make_flow(src_port=443, bytes_=200),
            make_flow(src_port=80, bytes_=80),
            make_flow(src_port=53, bytes_=20),
        ]

    def test_shares_ranked_descending(self):
        report = coverage_by_key(self.make_flows(), "src_port")
        shares = [share for _v, share in report.ranked]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)

    def test_coverage_of_subset(self):
        report = coverage_by_key(self.make_flows(), "src_port")
        assert report.coverage_of([443]) == pytest.approx(0.9)
        assert report.coverage_of([443, 80]) == pytest.approx(0.98)

    def test_select_covering_reaches_target(self):
        report = coverage_by_key(self.make_flows(), "src_port")
        chosen = select_covering(report, target=0.95)
        assert chosen == [443, 80]

    def test_select_covering_full_when_unreachable(self):
        report = coverage_by_key(self.make_flows(), "src_port")
        assert len(select_covering(report, target=1.0)) == 3

    def test_invalid_target_rejected(self):
        report = coverage_by_key(self.make_flows(), "src_port")
        with pytest.raises(ValueError):
            select_covering(report, target=0.0)

    def test_empty_flows(self):
        report = coverage_by_key([], "src_port")
        assert report.ranked == ()
        assert select_covering(report) == []

    def test_custom_key_callable(self):
        report = coverage_by_key(
            self.make_flows(), lambda f: f.src_port >= 100
        )
        assert report.coverage_of([True]) == pytest.approx(0.9)

    def test_sampling_compensation_weights(self):
        flows = [
            make_flow(src_port=80, bytes_=10, sampling_rate=100),  # 1000 est
            make_flow(src_port=443, bytes_=500, sampling_rate=1),
        ]
        report = coverage_by_key(flows, "src_port")
        assert report.ranked[0][0] == 80

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), target=st.floats(0.1, 0.99))
    def test_select_covering_minimal_property(self, seed, target):
        """The selection covers the target and no proper prefix does."""
        rng = np.random.default_rng(seed)
        flows = [
            make_flow(src_port=int(p), bytes_=int(b))
            for p, b in zip(
                rng.integers(1, 20, size=15), rng.integers(1, 10000, size=15)
            )
        ]
        report = coverage_by_key(flows, "src_port")
        chosen = select_covering(report, target=target)
        assert report.coverage_of(chosen) >= min(target, 1.0) - 1e-9
        if len(chosen) > 1:
            assert report.coverage_of(chosen[:-1]) < target

    def test_popular_ports_cover_synthetic_benign_traffic(self, trace):
        """The hard-coded Appendix-D ports dominate the benign mix."""
        from repro.netflow import POPULAR_PORTS
        from repro.synth import BenignConfig, BenignTrafficModel

        benign = BenignTrafficModel(
            trace.world.benign_clients, trace.world.country_of,
            BenignConfig(minutes_per_day=120),
            rng=np.random.default_rng(0),
        )
        flows = []
        for minute in range(30):
            flows.extend(benign.flows_at(trace.world.customers[0], minute))
        report = coverage_by_key(flows, "src_port")
        assert report.coverage_of(POPULAR_PORTS) > 0.5


@pytest.mark.slow
class TestPerTypePipeline:
    @pytest.fixture(scope="class")
    def per_type_result(self):
        from repro.core import PipelineConfig, TrainConfig, XatuPipeline
        from tests.conftest import small_model_config, small_scenario

        config = PipelineConfig(
            scenario=small_scenario(),
            model=small_model_config(),
            train=TrainConfig(epochs=3, batch_size=8, learning_rate=3e-3),
            overhead_bound=0.25,
            per_type=True,
            min_events_per_type=4,
        )
        pipeline = XatuPipeline(config)
        return pipeline, pipeline.run()

    def test_registry_attached(self, per_type_result):
        pipeline, _result = per_type_result
        assert hasattr(pipeline, "registry")
        assert "_default" in pipeline.registry.entries

    def test_metrics_valid(self, per_type_result):
        _pipeline, result = per_type_result
        assert 0.0 <= result.effectiveness.median <= 1.0
        assert np.isfinite(result.delay.median)

    def test_frequent_type_has_model(self, per_type_result):
        pipeline, _result = per_type_result
        typed = [k for k in pipeline.registry.entries if k != "_default"]
        assert typed, "at least one per-type model expected on this seed"
