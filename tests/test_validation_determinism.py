"""Scenario validation, pipeline determinism, and registry→online bridging."""

import numpy as np
import pytest

from repro.synth import ScenarioConfig


class TestScenarioValidation:
    def test_defaults_valid(self):
        ScenarioConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_days": 0},
            {"minutes_per_day": 0},
            {"prep_days": -1},
            {"prep_days": 200, "total_days": 100},
            {"n_customers": 0},
            {"n_botnets": 0},
            {"botnet_size": 0},
            {"sampling_rate": 0},
            {"sampling_rates": ()},
            {"sampling_rates": (1, 0)},
            {"rampup_volume_scale": 0.0},
            {"ramp_rate": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)


class TestPipelineDeterminism:
    def test_same_seed_same_results(self):
        from repro.core import PipelineConfig, TrainConfig, XatuPipeline
        from tests.conftest import small_model_config

        def run_once():
            config = PipelineConfig(
                scenario=ScenarioConfig(
                    total_days=10, minutes_per_day=100, prep_days=1.5,
                    n_customers=5, n_botnets=2, botnet_size=60, seed=9,
                ),
                model=small_model_config(),
                train=TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3),
                overhead_bound=0.25,
                seed=5,
            )
            return XatuPipeline(config).run()

        a = run_once()
        b = run_once()
        assert a.summary() == b.summary()
        assert a.train_losses == b.train_losses
        assert len(a.detection.alerts) == len(b.detection.alerts)


class TestSeedSweepDeterminism:
    """Same config + same seed must reproduce the trained model exactly —
    the precondition for the golden-trace harness (docs/TESTING.md)."""

    @pytest.mark.parametrize("seed", [7, 11])
    def test_two_full_trainer_runs_byte_identical(self, seed):
        import io

        from repro.testing import GoldenSpec, compute_golden_arrays

        def serialized_state(run_arrays):
            """npz-serialize the trained state exactly as save_module would."""
            state = {
                k.removeprefix("state/"): v
                for k, v in run_arrays.items()
                if k.startswith("state/")
            }
            assert state, "golden recipe produced no model parameters"
            buffer = io.BytesIO()
            np.savez(buffer, **state)
            return buffer.getvalue()

        spec = GoldenSpec(seed=seed)
        first = compute_golden_arrays(spec)
        second = compute_golden_arrays(spec)
        assert serialized_state(first) == serialized_state(second)
        # The full artifact set (losses, alerts, curves) matches too.
        assert set(first) == set(second)
        for name in first:
            assert first[name].tobytes() == second[name].tobytes(), name

    def test_different_seeds_differ(self):
        from repro.testing import GoldenSpec, compute_golden_arrays

        a = compute_golden_arrays(GoldenSpec(seed=7))
        b = compute_golden_arrays(GoldenSpec(seed=11))
        assert not np.array_equal(
            a["state/lstms.0.w_x"], b["state/lstms.0.w_x"]
        ), "seed must influence the trained weights"


class TestRegistryToOnline:
    def test_from_registry_builds_working_detector(self, trace):
        from repro.core import (
            OnlineXatu,
            TrainConfig,
            XatuModelRegistry,
            alerts_to_records,
        )
        from repro.detect import NetScoutDetector
        from repro.signals import FeatureExtractor
        from tests.conftest import small_model_config

        alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
        extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, alerts))
        registry = XatuModelRegistry(
            small_model_config(), TrainConfig(epochs=1, batch_size=8)
        )
        registry.train(trace, extractor, alerts, (0, int(trace.horizon * 0.7)))
        registry.set_threshold("_default", 0.3)

        blocklist = set()
        for botnet in trace.world.botnets:
            blocklist.update(int(a) for a in botnet.blocklisted_members)
        online = OnlineXatu.from_registry(
            registry,
            attack_type=None,
            customer_of={c.address: c.customer_id for c in trace.world.customers},
            blocklist=blocklist,
            route_table=trace.world.route_table,
        )
        assert online.threshold == 0.3
        online.step(0, [])
        assert online.current_minute == 0


@pytest.mark.slow
class TestEvasionCli:
    def test_evasion_command_runs(self, capsys):
        from repro.cli import main

        rc = main([
            "evasion", "--days", "12", "--customers", "6",
            "--epochs", "1", "--overhead-bound", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "evasive" in out
