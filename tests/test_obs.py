"""Tests for repro.obs: registry, tracing, profiler, exporters, wiring.

Covers the ISSUE checklist: histogram bucket edge cases (boundary values,
the +Inf bucket), tracer reentrancy and exception-safety, snapshot-vs-
reset isolation, a Prometheus exposition golden test, and the property
that enabling telemetry never changes model output bitwise.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.netflow import DatagramCodec, FlowCollector, FlowRecord, SequenceTracker
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    TapeProfiler,
    Tracer,
    get_registry,
    get_tracer,
    obs_enabled,
    profile_tape,
    render_top,
    selftest,
    set_enabled,
    snapshot_from_json,
    telemetry,
    to_json,
    to_prometheus,
    trace,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with the global switch off and clean."""
    previous = set_enabled(False)
    get_registry().reset()
    get_tracer().reset()
    yield
    set_enabled(previous)
    get_registry().reset()
    get_tracer().reset()


# ----------------------------------------------------------------------
# registry: metric kinds
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("events", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_are_independent_series(self):
        c = MetricsRegistry().counter("events")
        c.inc(1, kind="a")
        c.inc(2, kind="b")
        c.inc(4)
        assert c.value(kind="a") == 1
        assert c.value(kind="b") == 2
        assert c.value() == 4

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("level")
        g.set(3.0)
        g.set(-1.5)
        assert g.value() == -1.5
        g.add(0.5)
        assert g.value() == -1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus ``le`` semantics: value <= bound.
        h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        h.observe(0.1)
        value = h.value()
        assert value.buckets == (0.1, 1.0, float("inf"))
        assert value.counts == (1, 0, 0)

    def test_values_between_and_beyond_buckets(self):
        h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 1.0, 7.0):
            h.observe(v)
        value = h.value()
        assert value.counts == (2, 2, 1)  # 7.0 overflows into +Inf
        assert value.count == 5
        assert value.sum == pytest.approx(8.65)

    def test_inf_bucket_auto_appended_once(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, float("inf")))
        assert h.buckets == (1.0, float("inf"))

    def test_unsorted_buckets_are_sorted(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 0.1))
        assert h.buckets == (0.1, 1.0, float("inf"))

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(0.1, 0.1))

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(0.2, 1.0))
        # Same buckets re-request is fine.
        registry.histogram("h", buckets=(0.1, 1.0))

    def test_default_buckets_span_ms_to_seconds(self):
        assert DEFAULT_TIME_BUCKETS[0] == 0.001
        assert DEFAULT_TIME_BUCKETS[-1] == 10.0

    def test_quantile_estimates(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        value = h.value()
        assert 0.0 < value.quantile(0.25) <= 1.0
        assert value.quantile(0.0) >= 0.0
        assert value.quantile(1.0) <= 4.0
        with pytest.raises(ValueError):
            value.quantile(1.5)

    def test_empty_histogram_value(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        value = h.value()
        assert value.count == 0 and value.quantile(0.5) == 0.0


class TestEwma:
    def test_first_observation_seeds(self):
        e = MetricsRegistry().ewma("rate", alpha=0.5)
        e.observe(10.0)
        assert e.value() == 10.0

    def test_smoothing(self):
        e = MetricsRegistry().ewma("rate", alpha=0.5)
        e.observe(10.0)
        e.observe(20.0)
        assert e.value() == pytest.approx(15.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry().ewma("rate", alpha=0.0)


# ----------------------------------------------------------------------
# registry: snapshot / reset semantics
# ----------------------------------------------------------------------
class TestSnapshotReset:
    def test_snapshot_isolated_from_later_mutation(self):
        registry = MetricsRegistry()
        c = registry.counter("events")
        c.inc(5)
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        snap = registry.snapshot()
        c.inc(100)
        h.observe(0.1)
        assert snap.get("events").value() == 5
        assert snap.get("lat").value().count == 1

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        c = registry.counter("events")
        c.inc(5)
        registry.reset()
        assert registry.names() == ["events"]
        assert c.value() == 0
        # Bucket layout survives reset.
        h = registry.histogram("lat", buckets=(0.5, 2.0))
        h.observe(1.0)
        registry.reset()
        assert registry.histogram("lat", buckets=(0.5, 2.0)).value().count == 0

    def test_snapshot_survives_reset(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(7)
        snap = registry.snapshot()
        registry.reset()
        assert snap.get("events").value() == 7

    def test_switch_default_off_and_context_restores(self):
        assert not obs_enabled()
        with telemetry() as registry:
            assert obs_enabled()
            assert registry is get_registry()
            with telemetry(False):
                assert not obs_enabled()
            assert obs_enabled()
        assert not obs_enabled()


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_spans_record_nothing(self):
        with trace("quiet"):
            pass
        assert get_tracer().snapshot().children == ()

    def test_nesting_builds_a_tree(self):
        set_enabled(True)
        with trace("outer"):
            with trace("inner"):
                pass
            with trace("inner"):
                pass
        root = get_tracer().snapshot()
        outer = root.find("outer")
        assert outer is not None and outer.calls == 1
        inner = outer.find("inner")
        assert inner is not None and inner.calls == 2
        assert outer.exclusive_s <= outer.total_s

    def test_reentrancy_recursive_span_is_own_child(self):
        set_enabled(True)

        @trace("fib")
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        assert fib(5) == 5
        root = get_tracer().snapshot()
        top = root.find("fib")
        assert top is not None
        nested = top.find("fib")
        assert nested is not None
        # calls at depth 0 = 1 invocation; recursion accounted below it.
        assert top.calls == 1
        assert nested.calls > 1

    def test_exception_safety_closes_span(self):
        set_enabled(True)
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("body failed")
        node = get_tracer().snapshot().find("boom")
        assert node is not None and node.calls == 1
        # The stack unwound: a new span nests at top level again.
        with trace("after"):
            pass
        root = get_tracer().snapshot()
        assert root.find("after") is not None
        assert root.find("boom").find("after") is None

    def test_decorator_preserves_metadata_and_return(self):
        @trace("named")
        def documented():
            """docstring"""
            return 42

        assert documented() == 42
        assert documented.__doc__ == "docstring"

    def test_span_json_round_trip(self):
        set_enabled(True)
        with trace("a"):
            with trace("b"):
                pass
        from repro.obs import SpanNode

        root = get_tracer().snapshot()
        rebuilt = SpanNode.from_json(json.loads(json.dumps(root.to_json())))
        assert rebuilt.find("b").calls == root.find("b").calls

    def test_dedicated_tracer_reset(self):
        tracer = Tracer()
        set_enabled(True)
        with tracer.span("x"):
            pass
        assert tracer.snapshot().find("x") is not None
        tracer.reset()
        assert tracer.snapshot().children == ()


# ----------------------------------------------------------------------
# tape profiler
# ----------------------------------------------------------------------
class TestTapeProfiler:
    def test_profile_counts_forward_and_backward(self):
        from repro.nn import LSTM, Tensor

        rng = np.random.default_rng(0)
        lstm = LSTM(6, 4, rng=np.random.default_rng(1), fused=True)
        x = Tensor(rng.normal(size=(2, 5, 6)))
        with profile_tape() as prof:
            out, _state = lstm(x)
            (out * out).sum().backward()
        profile = prof.snapshot()
        fused_stats = profile.get("lstm_sequence")
        assert fused_stats is not None
        assert fused_stats.nodes >= 1
        assert fused_stats.backward_calls >= 1
        assert profile.total_nodes > 0
        assert "lstm_sequence" in profile.render()

    def test_hook_removed_after_context(self):
        from repro.nn.autograd import get_tape_hook

        with profile_tape():
            assert get_tape_hook() is not None
        assert get_tape_hook() is None

    def test_sampling_keeps_counts_exact(self):
        profiler = TapeProfiler(sample_every=3)
        for _ in range(7):
            profiler.record_forward("op", 1.0)
        stats = profiler.snapshot().get("op")
        assert stats.nodes == 7
        # 2 sampled records, each scaled by 3.
        assert stats.forward_s == pytest.approx(6.0)

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            TapeProfiler(sample_every=0)


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        c = registry.counter("train.steps", "optimizer steps")
        c.inc(3)
        registry.gauge("train.loss", "last loss").set(0.25)
        h = registry.histogram("train.step_seconds", "step time", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):
            h.observe(v)
        registry.counter("online.alerts").inc(2, severity="high")
        return registry

    def test_prometheus_golden(self):
        text = to_prometheus(self._registry().snapshot())
        expected = (
            "# HELP repro_train_steps_total optimizer steps\n"
            "# TYPE repro_train_steps_total counter\n"
            "repro_train_steps_total 3"
        )
        assert expected in text
        lines = text.splitlines()
        assert "# TYPE repro_train_step_seconds histogram" in lines
        assert 'repro_train_step_seconds_bucket{le="0.1"} 2' in lines
        assert 'repro_train_step_seconds_bucket{le="1"} 3' in lines
        assert 'repro_train_step_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_train_step_seconds_sum 2.65" in lines
        assert "repro_train_step_seconds_count 4" in lines
        assert 'repro_online_alerts_total{severity="high"} 2' in lines
        assert "repro_train_loss 0.25" in lines

    def test_json_round_trip_is_identity(self):
        snapshot = self._registry().snapshot()
        doc = to_json(snapshot)
        rebuilt = snapshot_from_json(json.loads(json.dumps(doc)))
        assert to_json(rebuilt, host=doc["host"]) == doc

    def test_json_serializes_inf_as_string(self):
        doc = to_json(self._registry().snapshot())
        hist = next(m for m in doc["metrics"] if m["kind"] == "histogram")
        assert hist["samples"][0]["buckets"][-1] == "+Inf"
        json.dumps(doc)  # must be valid JSON (no bare Infinity)

    def test_render_top_covers_all_kinds(self):
        registry = self._registry()
        registry.ewma("online.flow_rate").observe(12.0)
        set_enabled(True)
        with trace("train.fit"):
            pass
        text = render_top(
            registry.snapshot(), get_tracer().snapshot(), {"python": "3.x"}
        )
        for needle in ("train.steps", "p90", "train.fit", "online.alerts{"):
            assert needle in text

    def test_selftest_is_clean(self):
        assert selftest() == []

    def test_version_check(self):
        with pytest.raises(ValueError):
            snapshot_from_json({"format_version": 99, "metrics": []})


# ----------------------------------------------------------------------
# telemetry must never change numerics (bitwise)
# ----------------------------------------------------------------------
class TestBitwiseNeutrality:
    def test_model_output_bitwise_identical(self):
        from repro.core import XatuModel
        from tests.conftest import small_model_config

        config = small_model_config()
        model = XatuModel(config)
        model.eval()
        for seed in range(3):
            x = np.random.default_rng(seed).normal(
                size=(2, config.lookback_minutes, config.n_features)
            )
            baseline = model.survival_np(x)
            with telemetry():
                with trace("check"):
                    enabled = model.survival_np(x)
            assert baseline.tobytes() == enabled.tobytes()

    def test_training_bitwise_identical(self):
        from repro.core import TrainConfig, XatuModel, XatuTrainer
        from repro.bench.micro import _synthetic_samples
        from tests.conftest import small_model_config

        config = small_model_config()
        samples = _synthetic_samples(config, 6, np.random.default_rng(0))

        def run(enabled: bool) -> list[bytes]:
            model = XatuModel(config)
            trainer = XatuTrainer(
                model, TrainConfig(epochs=2, batch_size=3, seed=0)
            )
            if enabled:
                with telemetry():
                    trainer.fit(samples)
            else:
                trainer.fit(samples)
            return [p.data.tobytes() for p in model.parameters()]

        assert run(False) == run(True)

    def test_profiler_hook_bitwise_identical(self):
        from repro.nn import LSTM, Tensor

        rng = np.random.default_rng(0)
        x = np.ascontiguousarray(rng.normal(size=(2, 8, 5)))

        def forward() -> bytes:
            lstm = LSTM(5, 3, rng=np.random.default_rng(1), fused=True)
            out, _state = lstm(Tensor(x))
            return out.data.tobytes()

        baseline = forward()
        with profile_tape():
            hooked = forward()
        assert baseline == hooked


# ----------------------------------------------------------------------
# instrumented call sites
# ----------------------------------------------------------------------
def _flow(i: int) -> FlowRecord:
    return FlowRecord(
        timestamp=0, src_addr=1000 + i, dst_addr=42, src_port=80,
        dst_port=443, protocol=6, packets=1, bytes_=100,
    )


class TestFeedHealth:
    def test_collector_gap_accounting(self):
        codec = DatagramCodec(engine_id=3)
        collector = FlowCollector()
        blobs = [codec.encode([_flow(i), _flow(i + 50)]) for i in range(4)]
        collector.ingest_datagram(blobs[0])
        # blobs[1] dropped in transit.
        collector.ingest_datagram(blobs[2])
        collector.ingest_datagram(blobs[3])
        health = collector.feed_health()
        assert health.datagrams_received == 3
        assert health.records_received == 6
        assert health.records_lost == 2
        assert health.datagrams_reordered == 0
        assert health.loss_rate == pytest.approx(2 / 8)
        assert len(collector.drain()) == 6

    def test_reorder_detection(self):
        codec = DatagramCodec()
        collector = FlowCollector()
        first = codec.encode([_flow(0)])
        second = codec.encode([_flow(1)])
        collector.ingest_datagram(second)
        collector.ingest_datagram(first)  # arrives late
        assert collector.feed_health().datagrams_reordered == 1

    def test_tracker_counters_reach_registry(self):
        tracker = SequenceTracker()
        codec = DatagramCodec()
        blobs = [codec.encode([_flow(i)]) for i in range(3)]
        set_enabled(True)
        tracker.observe(DatagramCodec.decode(blobs[0])[0])
        tracker.observe(DatagramCodec.decode(blobs[2])[0])  # one lost
        registry = get_registry()
        assert registry.counter("netflow.datagrams").value() == 2
        assert registry.counter("netflow.records").value() == 2
        assert registry.counter("netflow.records_lost").value() == 1
        assert registry.gauge("netflow.loss_rate").value() == pytest.approx(1 / 3)


class TestTrainerInstrumentation:
    def _fit(self, progress=None):
        from repro.bench.micro import _synthetic_samples
        from repro.core import TrainConfig, XatuModel, XatuTrainer
        from tests.conftest import small_model_config

        config = small_model_config()
        samples = _synthetic_samples(config, 6, np.random.default_rng(0))
        trainer = XatuTrainer(
            XatuModel(config), TrainConfig(epochs=2, batch_size=3, seed=0)
        )
        return trainer.fit(samples, progress=progress)

    def test_metrics_and_spans_recorded(self):
        set_enabled(True)
        self._fit()
        registry = get_registry()
        assert registry.counter("train.steps").value() == 4
        assert registry.counter("train.epochs").value() == 2
        assert registry.counter("train.samples").value() == 12
        assert registry.histogram("train.step_seconds").value().count == 4
        assert registry.gauge("train.loss").value() > 0
        root = get_tracer().snapshot()
        assert root.find("train.fit").calls == 1
        assert root.find("train.epoch").calls == 2

    def test_progress_callback_without_telemetry(self):
        seen = []
        result = self._fit(progress=seen.append)
        assert not obs_enabled()
        assert [p.epoch for p in seen] == [1, 2]
        assert seen[0].epochs == 2
        assert seen[0].steps == 2
        assert seen[0].train_loss == pytest.approx(result.train_losses[0])
        assert seen[0].epoch_seconds > 0
        assert seen[0].mean_step_seconds > 0
        assert seen[0].val_loss is None
        # Nothing leaked into the global registry (registrations may
        # survive earlier tests' reset, but every series must be zero).
        steps = get_registry().get("train.steps")
        assert steps is None or steps.value() == 0


class TestOnlineAndScrubInstrumentation:
    def test_observe_minute_metrics(self):
        from repro.core import XatuModel
        from repro.netflow import RouteTable
        from repro.core.online import OnlineXatu
        from repro.signals.features import FeatureScaler, N_FEATURES
        from tests.conftest import small_model_config

        config = small_model_config()
        scaler = FeatureScaler()
        scaler.mean_ = np.zeros(N_FEATURES)
        scaler.std_ = np.ones(N_FEATURES)
        online = OnlineXatu(
            model=XatuModel(config),
            scaler=scaler,
            threshold=0.5,
            customer_of={42: 0},
            blocklist=set(),
            route_table=RouteTable(),
        )
        set_enabled(True)
        online.step(0, [_flow(0), _flow(1)])
        unknown = FlowRecord(
            timestamp=1, src_addr=9, dst_addr=777, src_port=1, dst_port=2,
            protocol=6, packets=1, bytes_=10,
        )
        online.step(1, [unknown])
        registry = get_registry()
        assert registry.counter("online.minutes").value() == 2
        assert registry.counter("online.flows").value() == 2
        assert registry.counter("online.flows_unrouted").value() == 1
        assert registry.gauge("online.watched_customers").value() == 1
        assert registry.histogram("online.score_seconds").value().count == 2
        root = get_tracer().snapshot()
        assert root.find("online.observe_minute").calls == 2
        assert root.find("online.score_customers") is not None

    def test_scrub_account_metrics(self, trace):
        from repro.scrub import DiversionWindow, ScrubbingCenter

        set_enabled(True)
        center = ScrubbingCenter(trace)
        event = trace.events[0]
        center.account(
            [DiversionWindow(event.customer_id, event.onset, event.end)]
        )
        registry = get_registry()
        assert registry.counter("scrub.diversion_windows").value() == 1
        assert registry.counter("scrub.diverted_minutes").value() > 0
        assert get_tracer().snapshot().find("scrub.account").calls == 1


# ----------------------------------------------------------------------
# bench integration
# ----------------------------------------------------------------------
class TestBenchObs:
    def test_host_metadata_in_bench_json(self, tmp_path):
        from repro.bench import run_all, write_bench_json, load_bench_json

        report = run_all(smoke=True, cases=("pooling", "train_epoch_obs"))
        out = write_bench_json(report, tmp_path)
        payload = load_bench_json(out)
        host = payload["host"]
        for key in ("python", "numpy", "machine", "system", "cpu_count"):
            assert key in host
        assert "train_epoch_obs/enabled" in payload["benchmarks"]
        assert "train_epoch_obs" in payload["obs_overheads"]

    def test_compare_to_baseline_host_mismatch_warns(self, tmp_path):
        from repro.bench import (
            compare_to_baseline,
            load_bench_json,
            run_all,
            write_bench_json,
        )

        report = run_all(smoke=True, cases=("pooling",))
        baseline = load_bench_json(write_bench_json(report, tmp_path))
        # Identical run against itself: no failures.
        warnings, failures = compare_to_baseline(report, baseline)
        assert failures == []
        # Slower rerun on a mismatched host: warning, not failure.
        slow = load_bench_json(tmp_path / "BENCH_fused.json")
        slow["host"]["python"] = "0.0.0"
        for entry in slow["benchmarks"].values():
            entry["best_s"] = entry["best_s"] / 100.0
        warnings, failures = compare_to_baseline(report, slow)
        assert failures == []
        assert any("host differs" in w for w in warnings)
        assert any("slower" in w for w in warnings)

    def test_compare_flags_regression_on_same_host(self, tmp_path):
        from repro.bench import (
            compare_to_baseline,
            load_bench_json,
            run_all,
            write_bench_json,
        )

        # Full-size run: smoke timings are single-rep noise and never fail.
        report = run_all(cases=("pooling",), reps=1)
        baseline = load_bench_json(write_bench_json(report, tmp_path))
        for entry in baseline["benchmarks"].values():
            entry["best_s"] = entry["best_s"] / 100.0
        warnings, failures = compare_to_baseline(report, baseline)
        assert any("slower" in f for f in failures)

    def test_compare_demotes_smoke_regressions_to_warnings(self, tmp_path):
        from repro.bench import (
            compare_to_baseline,
            load_bench_json,
            run_all,
            write_bench_json,
        )

        report = run_all(smoke=True, cases=("pooling",))
        baseline = load_bench_json(write_bench_json(report, tmp_path))
        for entry in baseline["benchmarks"].values():
            entry["best_s"] = entry["best_s"] / 100.0
        warnings, failures = compare_to_baseline(report, baseline)
        assert failures == []
        assert any("smoke mode" in w for w in warnings)
        assert any("slower" in w for w in warnings)

    def test_obs_overhead_render(self):
        from repro.bench import run_all

        report = run_all(smoke=True, cases=("train_epoch_obs",))
        assert "telemetry overhead" in report.render()
        assert "train_epoch_obs" in report.obs_overheads()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_metrics_selftest(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--selftest"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_metrics_requires_path(self, capsys):
        from repro.cli import main

        assert main(["metrics"]) == 2

    def test_metrics_renders_written_telemetry(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import write_telemetry

        registry = MetricsRegistry()
        registry.counter("train.steps", "steps").inc(5)
        path = tmp_path / "telemetry.json"
        write_telemetry(path, registry.snapshot())
        assert main(["metrics", str(path)]) == 0
        assert "train.steps" in capsys.readouterr().out
        assert main(["metrics", str(path), "--format", "prom"]) == 0
        assert "repro_train_steps_total 5" in capsys.readouterr().out
        assert main(["metrics", str(path), "--format", "json"]) == 0
        assert '"format_version"' in capsys.readouterr().out

    def test_bench_check_without_baseline(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "bench", "--smoke", "--only", "pooling",
            "--check", "--out", str(tmp_path),
        ])
        assert code == 0
        assert "nothing to check against" in capsys.readouterr().out

    def test_bench_check_against_fresh_baseline(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "bench", "--smoke", "--only", "pooling", "--out", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--smoke", "--only", "pooling",
            "--check", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "check against" in out
        # --check never rewrites the baseline.
        assert "wrote" not in out
