"""Property-based tests on the scrubbing accounting invariants.

Whatever diversion windows a detector emits, the Figure 2 accounting must
obey: 0 <= B <= A per event, C >= 0 per customer, full coverage gives
effectiveness 1, more diversion never reduces per-event effectiveness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scrub import DiversionWindow, ScrubbingCenter


@pytest.fixture(scope="module")
def center(trace):
    return ScrubbingCenter(trace)


def window_strategy(trace):
    customers = [c.customer_id for c in trace.world.customers]
    return st.lists(
        st.builds(
            lambda cid, start, length: DiversionWindow(
                cid, start, min(trace.horizon, start + length)
            ),
            st.sampled_from(customers),
            st.integers(0, trace.horizon - 1),
            st.integers(1, 60),
        ),
        max_size=12,
    )


class TestAccountingInvariants:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_b_bounded_by_a_and_c_nonnegative(self, data, trace, center):
        windows = data.draw(window_strategy(trace))
        report = center.account(windows)
        for event_id, (a, b) in report.event_area.items():
            assert 0.0 <= b <= a + 1e-6
        for value in report.customer_extraneous.values():
            assert value >= 0.0

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_monotone_in_coverage(self, data, trace, center):
        """Adding windows never lowers any event's effectiveness."""
        windows = data.draw(window_strategy(trace))
        extra = data.draw(window_strategy(trace))
        small = center.account(windows)
        large = center.account(windows + extra)
        for event_id in small.event_area:
            assert (
                large.effectiveness(event_id)
                >= small.effectiveness(event_id) - 1e-9
            )

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_effectiveness_in_unit_interval(self, data, trace, center):
        windows = data.draw(window_strategy(trace))
        report = center.account(windows)
        values = report.effectiveness_values()
        assert ((0.0 <= values) & (values <= 1.0 + 1e-9)).all()

    def test_full_horizon_diversion_is_ideal_effectiveness(self, trace, center):
        windows = [
            DiversionWindow(c.customer_id, 0, trace.horizon)
            for c in trace.world.customers
        ]
        report = center.account(windows)
        for event in trace.events:
            assert report.effectiveness(event.event_id) == pytest.approx(1.0)

    def test_full_horizon_diversion_maximizes_overhead(self, trace, center):
        full = center.account(
            [DiversionWindow(c.customer_id, 0, trace.horizon) for c in trace.world.customers]
        )
        nothing = center.account([])
        for cid in full.customer_extraneous:
            assert full.overhead(cid) >= nothing.overhead(cid)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_delay_within_event_bounds(self, data, trace, center):
        windows = data.draw(window_strategy(trace))
        report = center.account(windows)
        for event in trace.events:
            delay = report.detection_delay[event.event_id]
            if delay is not None:
                # Delay can be negative (early) but a diversion counted for
                # the event can never start after the event's end.
                assert event.onset + delay < event.end
