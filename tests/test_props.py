"""The property-based fuzzing pillar: runner self-tests plus the stack's
core invariants (gradcheck over random op DAGs, survival monotonicity,
detector/CUSUM causality, sampler unbiasedness)."""

import numpy as np
import pytest

from repro.detect.cusum import cusum_detect
from repro.netflow.records import decode_flows, encode_flows
from repro.netflow.sampler import PacketSampler
from repro.nn import Tensor, gradcheck, hazard_to_survival
from repro.survival.analysis import hazards_to_survival_np
from repro.testing import (
    PropertyError,
    arrays,
    choices,
    flow_records,
    forall,
    hazard_batches,
    integers,
    floats,
    run_property,
    tensors,
)


class TestRunnerSelfChecks:
    def test_passing_property_runs_all_cases(self):
        count = run_property(lambda n: n >= 0, integers(0, 100), runs=25)
        assert count == 25

    def test_failing_property_shrinks_to_boundary(self):
        """x < 50 over [0, 100] must shrink to exactly 50."""
        with pytest.raises(PropertyError) as exc_info:
            run_property(lambda n: n < 50, integers(0, 100), runs=200, seed=1)
        assert exc_info.value.counterexample == (50,)
        assert "integers(0,100) = 50" in str(exc_info.value)

    def test_exception_treated_as_failure_and_replayable(self):
        def prop(n):
            if n > 10:
                raise ValueError("too big")
            return True

        with pytest.raises(PropertyError) as exc_info:
            run_property(prop, integers(0, 1000), runs=100, seed=3)
        err = exc_info.value
        assert err.counterexample == (11,)  # shrunk to the smallest failing value
        assert isinstance(err.cause, ValueError)
        assert "seed 3" in str(err)
        # Replay: the recorded counterexample still fails the property.
        with pytest.raises(ValueError):
            prop(*err.counterexample)

    def test_array_counterexamples_shrink_toward_zero(self):
        with pytest.raises(PropertyError) as exc_info:
            run_property(
                lambda a: float(np.abs(a).sum()) < 1e9 and a.shape[0] < 2,
                arrays((integers(2, 6), integers(1, 3))),
                runs=20,
                seed=0,
            )
        (minimal,) = exc_info.value.counterexample
        assert minimal.shape[0] == 2  # trimmed to the smallest failing length
        assert np.all(minimal == 0)  # elements zeroed

    def test_forall_decorator_sweeps_and_replays(self):
        @forall(integers(1, 8), integers(1, 8), runs=10, seed=12)
        def commutes(a, b):
            return a + b == b + a

        assert commutes() == 10  # no args → run the whole sweep
        assert commutes(3, 4) is True  # explicit args → replay one case

    def test_seed_makes_runs_reproducible(self):
        observed = []
        run_property(lambda n: observed.append(n) or True, integers(0, 10**6), runs=5, seed=9)
        second = []
        run_property(lambda n: second.append(n) or True, integers(0, 10**6), runs=5, seed=9)
        assert observed == second


class TestGradcheckOnRandomDags:
    UNARY = ["sigmoid", "tanh", "softplus", "exp", "neg"]

    @staticmethod
    def _apply(op, value):
        if op == "neg":
            return -value
        return getattr(value, op)()

    def test_random_unary_chains_gradcheck(self):
        def prop(t, op_a, op_b):
            def func(v):
                return self._apply(op_b, self._apply(op_a, v)).sum()

            return gradcheck(func, [t])

        run_property(
            prop,
            tensors((integers(1, 3), integers(1, 4)), lo=-2.0, hi=2.0),
            choices(self.UNARY),
            choices(self.UNARY),
            runs=20,
            seed=2,
        )

    def test_random_binary_dags_gradcheck(self):
        """Diamond graphs: both operands derive from the same tensors."""

        def prop(a, b, op):
            def func(x, y):
                mixed = x * y + x.tanh()
                return self._apply(op, mixed).mean()

            return gradcheck(func, [a, b])

        run_property(
            prop,
            tensors((2, 3), lo=-1.5, hi=1.5),
            tensors((2, 3), lo=-1.5, hi=1.5),
            choices(self.UNARY),
            runs=15,
            seed=4,
        )

    def test_matmul_reduction_dags_gradcheck(self):
        def prop(a, b):
            return gradcheck(lambda x, y: ((x @ y).sigmoid()).sum(), [a, b])

        run_property(
            prop,
            tensors((2, 4), lo=-1.0, hi=1.0),
            tensors((4, 3), lo=-1.0, hi=1.0),
            runs=10,
            seed=5,
        )


class TestSurvivalInvariants:
    def test_survival_monotone_nonincreasing_in_unit_interval(self):
        def prop(h):
            s = hazards_to_survival_np(h)
            assert np.all(s > 0) and np.all(s <= 1.0)
            assert np.all(np.diff(s, axis=-1) <= 1e-15)
            # The autograd path agrees with the inference path.
            s_t = hazard_to_survival(Tensor(h)).numpy()
            assert s_t == pytest.approx(s, abs=1e-12)
            return True

        run_property(prop, hazard_batches(max_batch=5, max_steps=20), runs=40, seed=6)

    def test_zero_hazard_means_certain_survival(self):
        def prop(batch, steps):
            s = hazards_to_survival_np(np.zeros((batch, steps)))
            return bool(np.all(s == 1.0))

        run_property(prop, integers(1, 4), integers(1, 16), runs=10, seed=7)


class TestDetectorCausality:
    def test_cusum_never_fires_before_anomaly_onset(self):
        """With sub-threshold baseline noise, the first alarm index is at or
        after the first anomalous bin — alerts cannot precede the anomaly."""

        def prop(onset, magnitude, noise_scale):
            mu, sigma, numstd = 50.0, 4.0, 1.0
            series = np.full(onset + 30, mu)
            rng = np.random.default_rng(onset * 31 + int(magnitude))
            # Noise strictly below numstd*sigma keeps every pre-onset
            # increment negative, so S_n stays 0 until the anomaly.
            series[:onset] += rng.uniform(
                -1.0, noise_scale * numstd * sigma, size=onset
            )
            series[onset:] += magnitude * sigma
            hit = cusum_detect(series, mu, sigma, numstd, threshold=5.0)
            return hit is None or hit >= onset

        run_property(
            prop,
            integers(1, 120),
            floats(2.0, 20.0),
            floats(0.0, 0.9),
            runs=60,
            seed=8,
        )


class TestSamplerInvariants:
    def test_packet_sampling_unbiased_within_ci(self):
        """Total kept packets over many flows stays inside a 6-sigma
        binomial confidence band around n/rate."""

        from repro.netflow.records import FlowRecord, Protocol

        def prop(rate, packets):
            rng = np.random.default_rng(rate * 7919 + packets)
            sampler = PacketSampler(rate, rng=rng)
            flow = FlowRecord(
                timestamp=0, src_addr=1, dst_addr=2, src_port=0,
                dst_port=0, protocol=Protocol.UDP,
                packets=packets, bytes_=packets * 100,
            )
            trials = 400
            total = 0
            for _ in range(trials):
                sampled = sampler.sample(flow)
                total += sampled.packets if sampled is not None else 0
            n = trials * packets
            p = 1.0 / rate
            expected = n * p
            sigma = (n * p * (1 - p)) ** 0.5
            return abs(total - expected) <= 6.0 * sigma + 1.0

        run_property(
            prop, choices([2, 8, 64]), integers(50, 2000), runs=12, seed=10
        )

    def test_wire_codec_roundtrip_preserves_counters(self):
        def prop(flow):
            (back,) = decode_flows(encode_flows([flow]))
            assert back.packets == flow.packets
            assert back.bytes_ == flow.bytes_
            assert back.src_addr == flow.src_addr
            assert back.dst_addr == flow.dst_addr
            assert back.timestamp == flow.timestamp
            return True

        run_property(prop, flow_records(), runs=50, seed=11)
