"""Unit tests for packet sampling, export/collect, and the traffic matrix."""

import numpy as np
import pytest

from repro.netflow import (
    FlowCollector,
    FlowExporter,
    FlowRecord,
    PacketSampler,
    Protocol,
    TcpFlags,
    TrafficMatrix,
    VolumetricAccumulator,
    N_VOLUMETRIC,
    POPULAR_COUNTRIES,
    POPULAR_PORTS,
    SOURCE_CLASS_ALL,
    SOURCE_CLASS_BLOCKLIST,
    VOLUMETRIC_FEATURE_NAMES,
)
from tests.test_netflow import make_flow


class TestPacketSampler:
    def test_rate_one_is_identity(self):
        flow = make_flow()
        sampled = PacketSampler(1).sample(flow)
        assert sampled == flow

    def test_sampling_preserves_expected_volume(self, rng):
        sampler = PacketSampler(10, rng=rng)
        flow = make_flow(packets=1000, bytes_=100000)
        totals = []
        for _ in range(200):
            s = sampler.sample(flow)
            totals.append(s.estimated_bytes if s else 0)
        assert np.mean(totals) == pytest.approx(100000, rel=0.05)

    def test_small_flows_sometimes_invisible(self, rng):
        sampler = PacketSampler(1000, rng=rng)
        flow = make_flow(packets=1, bytes_=100)
        outcomes = [sampler.sample(flow) for _ in range(500)]
        assert sum(1 for o in outcomes if o is None) > 400

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            PacketSampler(0)

    def test_sample_many_drops_unseen(self, rng):
        sampler = PacketSampler(50, rng=rng)
        flows = [make_flow(packets=1, bytes_=60)] * 100
        kept = sampler.sample_many(flows)
        assert len(kept) < 50


class TestExporterCollector:
    def test_lossless_at_rate_one(self):
        exporter = FlowExporter("pop1", PacketSampler(1))
        collector = FlowCollector()
        flows = [make_flow(timestamp=i) for i in range(7)]
        exporter.observe(flows)
        assert exporter.pending == 7
        received = collector.ingest(exporter.flush())
        assert received == flows
        assert exporter.pending == 0
        assert collector.records_received == 7
        assert collector.datagrams_received == 1

    def test_drain_clears(self):
        exporter = FlowExporter("pop1", PacketSampler(1))
        collector = FlowCollector()
        exporter.observe([make_flow()])
        collector.ingest(exporter.flush())
        assert len(collector.drain()) == 1
        assert len(collector) == 0


class TestVolumetricAccumulator:
    def test_feature_vector_width(self):
        assert N_VOLUMETRIC == 63
        assert len(VOLUMETRIC_FEATURE_NAMES) == 63

    def test_counts_protocol_and_ports(self):
        acc = VolumetricAccumulator()
        acc.add(make_flow(protocol=int(Protocol.UDP), src_port=53, bytes_=1000, packets=2))
        vec = acc.finalize()
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, vec))
        assert names["udp_bytes"] == 1000
        assert names["udp_packets"] == 2
        assert names["sport53_bytes"] == 1000
        assert names["unique_sources"] == 1

    def test_tcp_flags_counted_per_bit(self):
        acc = VolumetricAccumulator()
        acc.add(
            make_flow(
                protocol=int(Protocol.TCP),
                tcp_flags=int(TcpFlags.SYN | TcpFlags.ACK),
                bytes_=500,
                packets=5,
                src_port=9999,
            )
        )
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, acc.finalize()))
        assert names["flag_syn_bytes"] == 500
        assert names["flag_ack_bytes"] == 500
        assert names["flag_rst_bytes"] == 0

    def test_mean_max_over_flows(self):
        acc = VolumetricAccumulator()
        acc.add(make_flow(bytes_=100, packets=1))
        acc.add(make_flow(bytes_=300, packets=3))
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, acc.finalize()))
        assert names["mean_bytes"] == 200
        assert names["max_bytes"] == 300
        assert names["max_packets"] == 3

    def test_country_attribution(self):
        acc = VolumetricAccumulator()
        acc.add(make_flow(src_country="DE", bytes_=700))
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, acc.finalize()))
        assert names["cc_DE_bytes"] == 700
        assert names["cc_US_bytes"] == 0

    def test_unknown_country_ignored(self):
        acc = VolumetricAccumulator()
        acc.add(make_flow(src_country="ZZ"))
        vec = acc.finalize()
        country_cols = [i for i, n in enumerate(VOLUMETRIC_FEATURE_NAMES) if n.startswith("cc_")]
        assert all(vec[i] == 0 for i in country_cols)

    def test_sampling_compensation(self):
        acc = VolumetricAccumulator()
        acc.add(make_flow(bytes_=100, packets=1, sampling_rate=100))
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, acc.finalize()))
        assert names["udp_bytes"] == 10000

    def test_merge_combines_sources_and_max(self):
        a = VolumetricAccumulator()
        b = VolumetricAccumulator()
        a.add(make_flow(src_addr=1, bytes_=100, packets=1))
        b.add(make_flow(src_addr=2, bytes_=300, packets=3))
        a.merge(b)
        names = dict(zip(VOLUMETRIC_FEATURE_NAMES, a.finalize()))
        assert names["unique_sources"] == 2
        assert names["max_bytes"] == 300
        assert names["mean_bytes"] == 200


class TestTrafficMatrix:
    def test_feature_block_zero_for_quiet_minutes(self):
        matrix = TrafficMatrix()
        matrix.add_flow(0, make_flow(timestamp=5))
        block = matrix.feature_block(0, 0, 10)
        assert block.shape == (10, 63)
        assert block[5].sum() > 0
        assert block[[0, 1, 2, 3, 4, 6, 7, 8, 9]].sum() == 0

    def test_source_classes_split(self):
        matrix = TrafficMatrix()
        matrix.add_flow(0, make_flow(timestamp=1, bytes_=100), [SOURCE_CLASS_BLOCKLIST])
        matrix.add_flow(0, make_flow(timestamp=1, bytes_=200))
        all_block = matrix.feature_block(0, 1, 2, SOURCE_CLASS_ALL)
        bl_block = matrix.feature_block(0, 1, 2, SOURCE_CLASS_BLOCKLIST)
        names_all = dict(zip(VOLUMETRIC_FEATURE_NAMES, all_block[0]))
        names_bl = dict(zip(VOLUMETRIC_FEATURE_NAMES, bl_block[0]))
        assert names_all["udp_bytes"] == 300
        assert names_bl["udp_bytes"] == 100

    def test_bytes_series_and_total(self):
        matrix = TrafficMatrix()
        matrix.add_flow(3, make_flow(timestamp=0, bytes_=100))
        matrix.add_flow(3, make_flow(timestamp=2, bytes_=50))
        series = matrix.bytes_series(3, 0, 3)
        assert list(series) == [100.0, 0.0, 50.0]
        assert matrix.total_bytes(3, 0, 3) == 150.0

    def test_customers_sorted(self):
        matrix = TrafficMatrix()
        matrix.add_flow(5, make_flow())
        matrix.add_flow(1, make_flow())
        assert matrix.customers() == [1, 5]

    def test_inverted_range_raises(self):
        matrix = TrafficMatrix()
        with pytest.raises(ValueError):
            matrix.feature_block(0, 5, 4)

    def test_max_minute_tracked(self):
        matrix = TrafficMatrix()
        matrix.add_flow(0, make_flow(timestamp=42))
        assert matrix.max_minute == 42
