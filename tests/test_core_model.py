"""Unit tests for the Xatu model, dataset builder, trainer, and detector."""

import numpy as np
import pytest

from repro.core import (
    DatasetBuilder,
    DetectorConfig,
    TimescaleSpec,
    TrainConfig,
    XatuDetector,
    XatuModel,
    XatuModelConfig,
    XatuTrainer,
)
from repro.detect import NetScoutDetector
from repro.nn import load_module_into, save_module
from repro.signals import FeatureExtractor


def tiny_model_config(n_features=273, detect_window=5):
    return XatuModelConfig(
        n_features=n_features,
        hidden_size=6,
        dense_size=4,
        detect_window=detect_window,
        timescales=(
            TimescaleSpec("short", 1, 20),
            TimescaleSpec("medium", 4, 10),
            TimescaleSpec("long", 10, 6),
        ),
    )


class TestTimescaleSpec:
    def test_minutes(self):
        assert TimescaleSpec("x", 10, 6).minutes == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            TimescaleSpec("x", 0, 5)


class TestXatuModelConfig:
    def test_lookback_is_longest_timescale(self):
        cfg = tiny_model_config()
        assert cfg.lookback_minutes == 60

    def test_detect_window_must_fit_first_scale(self):
        cfg = tiny_model_config(detect_window=25)
        with pytest.raises(ValueError, match="detect_window"):
            cfg.validate()

    def test_first_scale_must_be_finest(self):
        cfg = XatuModelConfig(
            timescales=(TimescaleSpec("a", 10, 6), TimescaleSpec("b", 1, 30)),
            detect_window=5,
        )
        with pytest.raises(ValueError, match="finest"):
            cfg.validate()

    def test_empty_timescales_rejected(self):
        cfg = XatuModelConfig(timescales=())
        with pytest.raises(ValueError):
            cfg.validate()


class TestXatuModel:
    def test_output_shape(self, rng):
        cfg = tiny_model_config(n_features=12)
        model = XatuModel(cfg)
        x = rng.normal(size=(3, cfg.lookback_minutes, 12))
        hazards = model.hazards_np(x)
        assert hazards.shape == (3, cfg.detect_window)

    def test_hazards_non_negative(self, rng):
        cfg = tiny_model_config(n_features=8)
        model = XatuModel(cfg)
        hazards = model.hazards_np(rng.normal(size=(2, cfg.lookback_minutes, 8)) * 5)
        assert (hazards >= 0).all()

    def test_cold_initialization_survival_near_one(self, rng):
        cfg = tiny_model_config(n_features=8)
        model = XatuModel(cfg)
        survival = model.survival_np(rng.normal(size=(4, cfg.lookback_minutes, 8)))
        assert (survival[:, -1] > 0.5).all()

    def test_feature_count_enforced(self, rng):
        cfg = tiny_model_config(n_features=12)
        model = XatuModel(cfg)
        with pytest.raises(ValueError, match="features"):
            model.hazards_np(rng.normal(size=(1, cfg.lookback_minutes, 11)))

    def test_short_input_rejected(self, rng):
        cfg = tiny_model_config(n_features=12)
        model = XatuModel(cfg)
        with pytest.raises(ValueError, match="lookback"):
            model.hazards_np(rng.normal(size=(1, 10, 12)))

    def test_longer_input_uses_most_recent(self, rng):
        cfg = tiny_model_config(n_features=6)
        model = XatuModel(cfg)
        x = rng.normal(size=(1, cfg.lookback_minutes + 15, 6))
        a = model.hazards_np(x)
        b = model.hazards_np(x[:, 15:, :])
        assert a == pytest.approx(b)

    def test_scale_indices_cover_detection_window(self):
        cfg = tiny_model_config()
        model = XatuModel(cfg)
        indices = model._scale_indices(cfg.lookback_minutes)
        for ts, idx in zip(cfg.timescales, indices):
            assert idx.shape == (cfg.detect_window,)
            assert (0 <= idx).all() and (idx < ts.span).all()
            assert (np.diff(idx) >= 0).all()

    def test_save_load_roundtrip(self, rng, tmp_path):
        cfg = tiny_model_config(n_features=6)
        model = XatuModel(cfg)
        x = rng.normal(size=(2, cfg.lookback_minutes, 6))
        expected = model.hazards_np(x)
        path = save_module(model, tmp_path / "model", metadata={"k": 1})
        clone = XatuModel(cfg)
        meta = load_module_into(clone, path)
        assert meta == {"k": 1}
        assert clone.hazards_np(x) == pytest.approx(expected)

    def test_single_timescale_variant(self, rng):
        cfg = XatuModelConfig(
            n_features=6, hidden_size=4, dense_size=4, detect_window=5,
            timescales=(TimescaleSpec("short", 1, 20),),
        )
        model = XatuModel(cfg)
        out = model.hazards_np(rng.normal(size=(2, 20, 6)))
        assert out.shape == (2, 5)


class TestDatasetBuilder:
    @pytest.fixture(scope="class")
    def built(self, trace):
        alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
        extractor = FeatureExtractor(trace)
        cfg = XatuModelConfig(
            hidden_size=4, dense_size=4, detect_window=5,
            timescales=(
                TimescaleSpec("short", 1, 30),
                TimescaleSpec("medium", 5, 12),
            ),
        )
        builder = DatasetBuilder(trace, extractor, cfg, rng=np.random.default_rng(1))
        sample_set = builder.build(alerts, (0, trace.horizon))
        return trace, alerts, cfg, sample_set

    def test_balanced_classes(self, built):
        _trace, alerts, _cfg, sample_set = built
        pos = sum(1 for s in sample_set.samples if s.is_attack)
        neg = len(sample_set) - pos
        assert pos > 0 and neg > 0
        assert abs(pos - neg) <= max(2, 0.2 * pos)

    def test_window_shapes(self, built):
        _trace, _alerts, cfg, sample_set = built
        for s in sample_set.samples:
            assert s.features.shape == (cfg.lookback_minutes, 273)
            assert s.label_time == cfg.detect_window - 1

    def test_negatives_avoid_attacks(self, built):
        trace, _alerts, _cfg, sample_set = built
        for s in sample_set.samples:
            if s.is_attack:
                continue
            for event in trace.events:
                if event.customer_id == s.customer_id:
                    assert not (event.onset - 30 <= s.end_minute < event.end + 30)

    def test_arrays_aligned(self, built):
        _trace, _alerts, _cfg, sample_set = built
        x, c, t = sample_set.arrays()
        assert len(x) == len(c) == len(t) == len(sample_set)

    def test_empty_range_raises(self, built):
        trace, alerts, cfg, _ = built
        extractor = FeatureExtractor(trace)
        builder = DatasetBuilder(trace, extractor, cfg)
        with pytest.raises(ValueError):
            builder.build([], (0, cfg.lookback_minutes))  # no quiet room, no alerts


class TestTrainer:
    def make_toy_set(self, rng, cfg, n=12):
        """Synthetic learnable task: attacks have a rising feature."""
        from repro.core.dataset import SampleSet, SurvivalSample
        from repro.signals import FeatureScaler

        samples = []
        for i in range(n):
            is_attack = i % 2 == 0
            base = rng.normal(size=(cfg.lookback_minutes, cfg.n_features)) * 0.1
            if is_attack:
                base[-cfg.detect_window :, 0] += np.linspace(1, 3, cfg.detect_window)
            samples.append(
                SurvivalSample(
                    features=base,
                    is_attack=is_attack,
                    label_time=cfg.detect_window - 1,
                    customer_id=0,
                    end_minute=0,
                    event_id=-1,
                )
            )
        scaler = FeatureScaler().fit([s.features for s in samples])
        for s in samples:
            s.features = scaler.transform(s.features)
        return SampleSet(samples=samples, scaler=scaler)

    def test_loss_decreases(self, rng):
        cfg = tiny_model_config(n_features=4)
        model = XatuModel(cfg)
        trainer = XatuTrainer(model, TrainConfig(epochs=5, batch_size=4, learning_rate=5e-3))
        result = trainer.fit(self.make_toy_set(rng, cfg))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_model_separates_classes_after_training(self, rng):
        cfg = tiny_model_config(n_features=4)
        model = XatuModel(cfg)
        train_set = self.make_toy_set(rng, cfg, n=24)
        XatuTrainer(model, TrainConfig(epochs=15, batch_size=8, learning_rate=1e-2)).fit(train_set)
        x, c, _t = train_set.arrays()
        survival = model.survival_np(x)[:, -1]
        assert survival[c > 0.5].mean() < survival[c < 0.5].mean()

    def test_bce_mode_runs(self, rng):
        cfg = tiny_model_config(n_features=4)
        model = XatuModel(cfg)
        trainer = XatuTrainer(model, TrainConfig(epochs=2, loss="bce"))
        result = trainer.fit(self.make_toy_set(rng, cfg))
        assert len(result.train_losses) == 2

    def test_invalid_loss_rejected(self, rng):
        with pytest.raises(ValueError):
            XatuTrainer(XatuModel(tiny_model_config(n_features=4)), TrainConfig(loss="mse"))

    def test_early_stopping(self, rng):
        cfg = tiny_model_config(n_features=4)
        model = XatuModel(cfg)
        data = self.make_toy_set(rng, cfg)
        trainer = XatuTrainer(
            model, TrainConfig(epochs=50, learning_rate=1e-2, early_stop_patience=2)
        )
        result = trainer.fit(data, validation=data)
        # Either it stopped early or it ran all epochs with val tracking.
        assert len(result.val_losses) == result.epochs_run
        if result.stopped_early:
            assert result.epochs_run < 50

    def test_evaluate_loss_no_grads(self, rng):
        cfg = tiny_model_config(n_features=4)
        model = XatuModel(cfg)
        trainer = XatuTrainer(model)
        loss = trainer.evaluate_loss(self.make_toy_set(rng, cfg))
        assert np.isfinite(loss)
        assert all(p.grad is None for p in model.parameters())


class TestDetectionOutput:
    def test_rolling_survival_matches_manual(self, rng):
        from repro.core.detector import DetectionOutput

        hazards = np.abs(rng.normal(size=30)) * 0.2
        output = DetectionOutput(hazard_series={0: hazards})
        window = 7
        series = output.survival_series(0, window)
        for t in range(len(hazards)):
            lo = max(0, t + 1 - window)
            assert series[t] == pytest.approx(np.exp(-hazards[lo : t + 1].sum()))
