"""Tests for the markdown report generator and its CLI command."""

import pytest

from repro.cli import main
from repro.eval import build_report


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self, trace):
        return build_report(trace=trace)

    def test_contains_every_section(self, report):
        for heading in (
            "Attack preparation signals",
            "Attack type transitions",
            "Attacker activity by day",
            "Clustering coefficient",
            "Naive early detection",
            "Attack counts per split",
        ):
            assert heading in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|---"):
                header = lines[i - 1]
                assert header.count("|") == line.count("|")

    def test_trace_summary_line_present(self, report, trace):
        assert f"{len(trace.events)} attacks" in report

    def test_accepts_scenario_instead_of_trace(self):
        from tests.conftest import small_scenario

        report = build_report(small_scenario())
        assert report.startswith("# Xatu reproduction")


class TestReportCli:
    def test_report_to_stdout(self, capsys):
        rc = main(["report", "--days", "8", "--customers", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# Xatu reproduction" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        rc = main(["report", "--days", "8", "--customers", "5", "--out", str(path)])
        assert rc == 0
        assert path.exists()
        assert "# Xatu reproduction" in path.read_text()
