"""Tests for the per-type model registry and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import TrainConfig, XatuModelRegistry, alerts_to_records
from repro.core.registry import DEFAULT_KEY
from repro.detect import NetScoutDetector
from repro.signals import FeatureExtractor
from repro.synth import AttackType
from tests.conftest import small_model_config


@pytest.fixture(scope="module")
def trained_registry(trace):
    alerts = [a for a in NetScoutDetector().detect(trace) if a.event_id >= 0]
    extractor = FeatureExtractor(trace, alerts=alerts_to_records(trace, alerts))
    registry = XatuModelRegistry(
        small_model_config(), TrainConfig(epochs=2, batch_size=8, learning_rate=3e-3)
    )
    split = int(trace.horizon * 0.7)
    registry.train(trace, extractor, alerts, (0, split), (split, trace.horizon),
                   min_events_per_type=3)
    return registry, alerts


class TestRegistry:
    def test_default_model_always_present(self, trained_registry):
        registry, _alerts = trained_registry
        assert DEFAULT_KEY in registry.entries

    def test_frequent_types_get_own_model(self, trained_registry, trace):
        registry, alerts = trained_registry
        split = int(trace.horizon * 0.7)
        counts = {}
        for a in alerts:
            if a.detect_minute < split:
                name = trace.events[a.event_id].attack_type.value
                counts[name] = counts.get(name, 0) + 1
        for name, n in counts.items():
            if n >= 3:
                assert name in registry.entries

    def test_entry_for_falls_back_to_default(self, trained_registry):
        registry, _alerts = trained_registry
        entry = registry.entry_for("nonexistent_type")
        assert entry is registry.entries[DEFAULT_KEY]
        assert registry.entry_for(None) is registry.entries[DEFAULT_KEY]

    def test_entry_for_accepts_enum(self, trained_registry):
        registry, _alerts = trained_registry
        entry = registry.entry_for(AttackType.UDP_FLOOD)
        assert entry in registry.entries.values()

    def test_set_threshold_validation(self, trained_registry):
        registry, _alerts = trained_registry
        registry.set_threshold(DEFAULT_KEY, 0.3)
        assert registry.entries[DEFAULT_KEY].threshold == 0.3
        with pytest.raises(KeyError):
            registry.set_threshold("nope", 0.5)
        with pytest.raises(ValueError):
            registry.set_threshold(DEFAULT_KEY, 1.5)

    def test_models_and_scalers_dicts_aligned(self, trained_registry):
        registry, _alerts = trained_registry
        assert set(registry.models_dict()) == set(registry.scalers_dict())

    def test_save_load_roundtrip(self, trained_registry, tmp_path, rng):
        registry, _alerts = trained_registry
        registry.set_threshold(DEFAULT_KEY, 0.42)
        registry.save(tmp_path / "models")
        restored = XatuModelRegistry.load(tmp_path / "models")
        assert set(restored.entries) == set(registry.entries)
        assert restored.entries[DEFAULT_KEY].threshold == 0.42
        cfg = registry.model_config
        x = rng.normal(size=(1, cfg.lookback_minutes, cfg.n_features))
        scaled = registry.entries[DEFAULT_KEY].scaler.transform(x[0])[None]
        original = registry.entries[DEFAULT_KEY].model.hazards_np(scaled)
        reloaded = restored.entries[DEFAULT_KEY].model.hazards_np(scaled)
        assert reloaded == pytest.approx(original)

    def test_untrained_registry_errors(self):
        registry = XatuModelRegistry(small_model_config(), TrainConfig())
        with pytest.raises(RuntimeError):
            registry.entry_for(None)
        with pytest.raises(RuntimeError):
            registry.save("/tmp/should_not_exist")


@pytest.mark.slow
class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_census_runs(self, capsys):
        rc = main(["census", "--days", "8", "--customers", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Attack preparation signals" in out
        assert "Table 2" in out

    def test_pipeline_runs(self, capsys):
        rc = main([
            "pipeline", "--days", "12", "--customers", "6",
            "--epochs", "2", "--overhead-bound", "0.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "effectiveness" in out
        assert "overhead" in out

    def test_train_saves_models(self, tmp_path, capsys):
        rc = main([
            "train", "--days", "12", "--customers", "6",
            "--epochs", "1", "--out", str(tmp_path / "m"),
        ])
        assert rc == 0
        assert (tmp_path / "m" / "manifest.json").exists()
        restored = XatuModelRegistry.load(tmp_path / "m")
        assert DEFAULT_KEY in restored.entries
