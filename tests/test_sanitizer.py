"""Runtime sanitizer (REPRO_SANITIZE=1): frozen tape buffers and finite
kernel-boundary guards — the dynamic backstop behind xatulint XL001.

These run with the switch flipped programmatically (``sanitized``), so
they exercise the sanitizer regardless of the environment; the CI
sanitized lane additionally runs the whole tier-1 suite under
``REPRO_SANITIZE=1`` to prove the hooks don't perturb training, golden
traces, or serving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    SanitizeError,
    check_finite,
    freeze_tape_buffer,
    sanitize_enabled,
    sanitized,
    set_sanitize,
)
from repro.nn import SGD, Dense, Tensor, lstm_sequence, no_grad


@pytest.fixture()
def sanitize_on():
    with sanitized(True):
        yield


class TestSwitch:
    def test_set_sanitize_returns_previous(self):
        prev = set_sanitize(True)
        try:
            assert sanitize_enabled()
        finally:
            set_sanitize(prev)

    def test_context_restores_on_exit(self):
        before = sanitize_enabled()
        with sanitized(not before):
            assert sanitize_enabled() is (not before)
        assert sanitize_enabled() is before

    def test_context_restores_on_raise(self):
        before = sanitize_enabled()
        with pytest.raises(RuntimeError, match="boom"):
            with sanitized(not before):
                raise RuntimeError("boom")
        assert sanitize_enabled() is before


class TestFrozenTapeBuffers:
    def test_op_output_is_frozen(self, sanitize_on):
        a = Tensor(np.ones(4), requires_grad=True)
        out = a * 2.0
        assert not out.data.flags.writeable
        with pytest.raises(ValueError):
            out.data[0] = 99.0

    def test_leaves_stay_writable(self, sanitize_on):
        leaf = Tensor(np.ones(4), requires_grad=True)
        assert leaf.data.flags.writeable
        leaf.data[0] = 2.0  # optimizers do exactly this

    def test_backward_still_works_on_frozen_graph(self, sanitize_on):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        loss = ((a * b) + a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, b.data + 1.0)
        np.testing.assert_allclose(b.grad, a.data)

    def test_training_step_under_sanitizer(self, sanitize_on):
        # Forward, backward, and an optimizer step must all survive the
        # frozen-activation regime: only leaves get mutated.
        rng = np.random.default_rng(0)
        layer = Dense(3, 2)
        opt = SGD(layer.parameters(), lr=0.1)
        x = Tensor(rng.normal(size=(5, 3)))
        before = [p.data.copy() for p in layer.parameters()]
        loss = (layer.forward(x) * layer.forward(x)).mean()
        loss.backward()
        opt.step()
        after = [p.data for p in layer.parameters()]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_no_grad_outputs_stay_writable(self, sanitize_on):
        # Under no_grad there is no tape to protect; the graph-free lane
        # reuses scratch buffers in place by design.
        a = Tensor(np.ones(4))
        with no_grad():
            out = a * 2.0
        assert out._parents == ()
        assert out.data.flags.writeable

    def test_disabled_switch_freezes_nothing(self):
        with sanitized(False):
            a = Tensor(np.ones(4), requires_grad=True)
            out = a * 2.0
            assert out.data.flags.writeable

    def test_freeze_tape_buffer_is_idempotent(self):
        arr = np.ones(3)
        freeze_tape_buffer(arr)
        freeze_tape_buffer(arr)
        assert not arr.flags.writeable


class TestCheckFinite:
    def test_clean_arrays_pass(self):
        check_finite("test", a=np.ones(3), b=None, c=np.arange(4))

    def test_nan_raises_with_location(self):
        bad = np.array([1.0, np.nan, 3.0])
        with pytest.raises(SanitizeError, match=r"test\.spot.*1 NaN"):
            check_finite("test.spot", x=bad)

    def test_inf_raises(self):
        with pytest.raises(SanitizeError, match="1 inf"):
            check_finite("test", x=np.array([np.inf]))

    def test_integer_arrays_are_skipped(self):
        check_finite("test", counts=np.array([1, 2, 3]))


class TestKernelBoundaries:
    def _lstm_args(self, rng, hidden=4, features=3):
        x = Tensor(rng.normal(size=(2, 5, features)))
        w_x = Tensor(rng.normal(size=(features, 4 * hidden)) * 0.1,
                     requires_grad=True)
        w_h = Tensor(rng.normal(size=(hidden, 4 * hidden)) * 0.1,
                     requires_grad=True)
        bias = Tensor(np.zeros(4 * hidden), requires_grad=True)
        return x, w_x, w_h, bias

    def test_lstm_clean_inputs_pass(self, sanitize_on, rng):
        outputs, (h, c) = lstm_sequence(*self._lstm_args(rng))
        assert np.all(np.isfinite(outputs.data))

    def test_lstm_nan_input_raises_at_boundary(self, sanitize_on, rng):
        x, w_x, w_h, bias = self._lstm_args(rng)
        x.data[0, 0, 0] = np.nan
        with pytest.raises(SanitizeError, match="lstm_sequence.inputs"):
            lstm_sequence(x, w_x, w_h, bias)

    def test_lstm_infer_lane_guarded_too(self, sanitize_on, rng):
        x, w_x, w_h, bias = self._lstm_args(rng)
        x.data[1, 2, 1] = np.inf
        with no_grad():
            with pytest.raises(SanitizeError, match="lstm_sequence.inputs"):
                lstm_sequence(x, w_x, w_h, bias)

    def test_lstm_guards_off_when_disabled(self, rng):
        with sanitized(False):
            x, w_x, w_h, bias = self._lstm_args(rng)
            x.data[0, 0, 0] = np.nan
            outputs, _ = lstm_sequence(x, w_x, w_h, bias)
            assert np.isnan(outputs.data).any()
