"""Tests for the streaming deployment mode (OnlineXatu)."""

import numpy as np
import pytest

from repro.core import OnlineXatu, TrainConfig, XatuModel, alerts_to_records
from repro.detect import NetScoutDetector
from repro.netflow import RouteTable
from repro.signals import AlertRecord, FeatureScaler
from repro.synth import AttackType
from tests.conftest import small_model_config


@pytest.fixture(scope="module")
def online_setup(trace):
    """An OnlineXatu around an untrained (cold) model on the shared trace."""
    cfg = small_model_config()
    model = XatuModel(cfg)
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    customer_of = {c.address: c.customer_id for c in trace.world.customers}
    blocklist = set()
    for botnet in trace.world.botnets:
        blocklist.update(int(a) for a in botnet.blocklisted_members)
    return trace, model, scaler, customer_of, blocklist


def make_online(setup, threshold=0.5, **kwargs):
    trace, model, scaler, customer_of, blocklist = setup
    return OnlineXatu(
        model=model,
        scaler=scaler,
        threshold=threshold,
        customer_of=customer_of,
        blocklist=blocklist,
        route_table=trace.world.route_table,
        base_rate_of={c.customer_id: c.base_rate_bytes for c in trace.world.customers},
        **kwargs,
    )


def minute_flows(trace, minute):
    """Reconstruct one minute of flows from the trace's benign generator.

    The trace doesn't retain raw flows, so streaming tests synthesize a
    small replay through the benign model.
    """
    from repro.synth import BenignConfig, BenignTrafficModel

    benign = BenignTrafficModel(
        trace.world.benign_clients,
        trace.world.country_of,
        BenignConfig(minutes_per_day=trace.config.minutes_per_day),
        rng=np.random.default_rng(minute),
    )
    flows = []
    for customer in trace.world.customers[:3]:
        flows.extend(benign.flows_at(customer, minute))
    return flows


class TestOnlineXatu:
    def test_threshold_validated(self, online_setup):
        with pytest.raises(ValueError):
            make_online(online_setup, threshold=1.0)

    def test_minutes_must_advance(self, online_setup):
        online = make_online(online_setup)
        trace = online_setup[0]
        online.step(0, minute_flows(trace, 0))
        with pytest.raises(ValueError, match="advance"):
            online.step(0, [])

    def test_cold_model_stays_quiet(self, online_setup):
        """The cold-initialized model's survival stays near 1 — no alerts."""
        online = make_online(online_setup, threshold=0.1)
        trace = online_setup[0]
        for minute in range(5):
            alerts = online.step(minute, minute_flows(trace, minute))
            assert alerts == []
        assert online.poll_alerts() == []
        assert online.current_minute == 4

    def test_flows_for_unknown_destinations_ignored(self, online_setup):
        online = make_online(online_setup)
        from tests.test_netflow import make_flow

        stray = make_flow(timestamp=0, dst_addr=123456)
        online.step(0, [stray])
        assert len(online.matrix) == 0

    def test_classification_tags_blocklisted(self, online_setup):
        trace, *_ = online_setup
        online = make_online(online_setup)
        botnet = next(
            b for b in trace.world.botnets if len(b.blocklisted_members)
        )
        listed = int(botnet.blocklisted_members[0])
        customer = trace.world.customers[0]
        from tests.test_netflow import make_flow

        flow = make_flow(timestamp=0, src_addr=listed, dst_addr=customer.address)
        online.step(0, [flow])
        from repro.netflow import SOURCE_CLASS_BLOCKLIST

        assert online.matrix.total_bytes(
            customer.customer_id, 0, 1, SOURCE_CLASS_BLOCKLIST
        ) > 0

    def test_cdet_alert_feeds_a2_tagging(self, online_setup):
        trace, *_ = online_setup
        online = make_online(online_setup)
        customer = trace.world.customers[0]
        attacker = 777777
        online.ingest_cdet_alert(
            AlertRecord(
                customer_id=customer.customer_id,
                attack_type=AttackType.UDP_FLOOD,
                detect_minute=0,
                end_minute=1,
                peak_bytes=1e9,
                attackers=frozenset({attacker}),
            )
        )
        from tests.test_netflow import make_flow
        from repro.netflow import SOURCE_CLASS_PREV_ATTACKER

        flow = make_flow(timestamp=2, src_addr=attacker, dst_addr=customer.address)
        online.step(2, [flow])
        assert online.matrix.total_bytes(
            customer.customer_id, 2, 3, SOURCE_CLASS_PREV_ATTACKER
        ) > 0

    def test_hot_model_alerts_and_suppresses(self, online_setup):
        """Force a hot hazard head: alerts fire, then suppress, then re-arm."""
        trace, model, scaler, customer_of, blocklist = online_setup
        hot = XatuModel(model.config)
        hot.combine.bias.data[...] = 3.0  # softplus(3) ~ 3.05 hazard/min
        online = OnlineXatu(
            model=hot, scaler=scaler, threshold=0.5,
            customer_of=customer_of, blocklist=blocklist,
            route_table=trace.world.route_table, rearm_after=3,
        )
        first = online.step(0, minute_flows(trace, 0))
        assert first, "hot model must alert immediately"
        alerted = {a.customer_id for a in first}
        # Suppressed during the re-arm window.
        second = online.step(1, minute_flows(trace, 1))
        assert not ({a.customer_id for a in second} & alerted)
        # Re-armed after the window.
        third = online.step(3, minute_flows(trace, 3))
        assert {a.customer_id for a in third} & alerted

    def test_mitigation_end_rearms_early(self, online_setup):
        trace, model, scaler, customer_of, blocklist = online_setup
        hot = XatuModel(model.config)
        hot.combine.bias.data[...] = 3.0
        online = OnlineXatu(
            model=hot, scaler=scaler, threshold=0.5,
            customer_of=customer_of, blocklist=blocklist,
            route_table=trace.world.route_table, rearm_after=100,
        )
        first = online.step(0, minute_flows(trace, 0))
        cid = first[0].customer_id
        online.ingest_mitigation_end(cid, minute=1)
        second = online.step(1, minute_flows(trace, 1))
        assert cid in {a.customer_id for a in second}

    def test_poll_alerts_drains(self, online_setup):
        trace, model, scaler, customer_of, blocklist = online_setup
        hot = XatuModel(model.config)
        hot.combine.bias.data[...] = 3.0
        online = OnlineXatu(
            model=hot, scaler=scaler, threshold=0.5,
            customer_of=customer_of, blocklist=blocklist,
            route_table=trace.world.route_table,
        )
        online.step(0, minute_flows(trace, 0))
        drained = online.poll_alerts()
        assert drained
        assert online.poll_alerts() == []

    def test_hazard_memory_bounded(self, online_setup):
        trace, *_ = online_setup
        online = make_online(online_setup, threshold=0.01)
        window = online.model.config.detect_window
        for minute in range(5 * window):
            online.step(minute, [])
        for series in online._hazards.values():
            assert len(series) <= 4 * window
