"""Differential proof that the columnar ingest path is bit-identical.

The columnar lane (``FlowBatch`` / ``decode_batch`` / ``add_batch`` /
``sample_batch``) exists purely for speed: one ``np.frombuffer`` view per
datagram and one sorted group-by per minute instead of a Python loop per
record.  Its contract is *bitwise* equivalence with the scalar path —
same wire bytes, same sampled records, same traffic-matrix cells down to
the pickle bytes, same alerts out of :class:`OnlineXatu` — because the
matrix feeds checkpointed state and any drift would break the serve
engine's crash-equivalence guarantee.

Three layers of differential tests on the PR-1 shrinking property runner:

* **codec level** — ``encode_flows``/``decode_flows_batch`` vs the
  per-record ``struct`` path over random record lists, plus the error
  paths (truncated block, bad version, zero-record datagrams);
* **aggregation level** — ``TrafficMatrix.add_batch`` vs an
  ``add_flow``-per-record loop over random batches and class masks,
  compared by ``pickle``-byte-identical ``state_dict``;
* **detector level** — ``OnlineXatu.step(minute, FlowBatch)`` vs the
  record-list lane over randomized multi-minute traces (blocklist,
  previous-attacker and spoofed-source classes all active), asserting
  identical alerts and pickle-identical post-run state.

The satellite regressions live here too: the vectorized
``PacketSampler.sample_many``/``sample_batch`` draw-order pin, the
unified ``netflow.*`` obs accounting across both collector entry points,
and feed-health accounting for out-of-order and duplicated datagrams.
"""

import pickle
import struct
from dataclasses import replace

import numpy as np
import pytest

from repro.core import OnlineXatu, XatuModel
from repro.core.model import TimescaleSpec, XatuModelConfig
from repro.netflow import (
    FLOW_DTYPE,
    FLOW_WIRE_SIZE,
    DatagramCodec,
    FlowBatch,
    FlowCollector,
    FlowRecord,
    PacketSampler,
    RouteTable,
    TrafficMatrix,
    decode_flows,
    decode_flows_batch,
    encode_flow,
    encode_flows,
)
from repro.netflow.matrix import SOURCE_CLASS_BLOCKLIST, SOURCE_CLASS_PREV_ATTACKER
from repro.obs import get_registry, set_enabled
from repro.signals import FeatureScaler
from repro.signals.history import AlertRecord
from repro.synth.attacks import AttackType
from repro.testing.props import choices, integers, run_property

COUNTRIES = ["US", "CN", "DE", "BR", "RU", "XX", ""]


def _random_records(rng: np.random.Generator, n: int, minutes: int = 30) -> list[FlowRecord]:
    """Random wire-domain records (full field ranges, padded countries)."""
    return [
        FlowRecord(
            timestamp=int(rng.integers(0, minutes)),
            src_addr=int(rng.integers(1, 2**32)),
            dst_addr=int(rng.integers(1, 2**32)),
            src_port=int(rng.integers(0, 2**16)),
            dst_port=int(rng.integers(0, 2**16)),
            protocol=int(rng.choice([1, 6, 17, 47])),
            packets=int(rng.integers(1, 5_000)),
            bytes_=int(rng.integers(40, 10**7)),
            tcp_flags=int(rng.integers(0, 256)),
            src_country=str(rng.choice(COUNTRIES)) or "US",
            sampling_rate=int(rng.choice([1, 100, 1000])),
        )
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# codec level: one frombuffer view == per-record struct unpacking
# ----------------------------------------------------------------------
def test_flow_dtype_mirrors_wire_layout():
    assert FLOW_DTYPE.itemsize == FLOW_WIRE_SIZE
    record = _random_records(np.random.default_rng(0), 1)[0]
    assert FlowBatch.from_records([record]).to_bytes() == encode_flow(record)


def test_codec_paths_byte_identical():
    def round_trips(seed, n):
        records = _random_records(np.random.default_rng(seed), n)
        batch = FlowBatch.from_records(records)
        # encode: array buffer == per-record struct packing
        wire = encode_flows(records)
        assert encode_flows(batch) == wire
        assert batch.to_bytes() == b"".join(encode_flow(r) for r in records)
        # decode: the columnar view materializes the same records
        assert decode_flows(wire) == records
        decoded = decode_flows_batch(wire)
        assert decoded.to_records() == records
        assert np.array_equal(decoded.array, batch.array)

    run_property(round_trips, integers(0, 10**6), choices([0, 1, 3, 50]), runs=12, seed=31)


def test_datagram_decode_batch_matches_scalar_decode():
    records = _random_records(np.random.default_rng(5), 17)
    blob = DatagramCodec(engine_id=3).encode(records)
    header, scalar = DatagramCodec.decode(blob)
    header2, batch = DatagramCodec.decode_batch(blob)
    assert header == header2
    assert batch.to_records() == scalar


def test_datagram_encode_accepts_batches_and_advances_sequence():
    records = _random_records(np.random.default_rng(6), 9)
    scalar_codec = DatagramCodec(engine_id=1)
    batch_codec = DatagramCodec(engine_id=1)
    for _ in range(3):  # sequence must advance identically
        assert batch_codec.encode(FlowBatch.from_records(records)) == scalar_codec.encode(records)


def test_decode_batch_is_zero_copy():
    records = _random_records(np.random.default_rng(7), 4)
    blob = DatagramCodec(engine_id=1).encode(records)
    _header, batch = DatagramCodec.decode_batch(blob)
    # the batch aliases the datagram bytes: no copy was made
    assert batch.array.base is blob
    assert memoryview(batch.array).readonly


class TestColumnarDecoderErrorPaths:
    def test_zero_record_datagram_decodes(self):
        blob = DatagramCodec(engine_id=1).encode([])
        header, batch = DatagramCodec.decode_batch(blob)
        assert header.count == 0 and len(batch) == 0

    def test_truncated_record_block_rejected(self):
        blob = DatagramCodec(engine_id=1).encode(_random_records(np.random.default_rng(8), 3))
        with pytest.raises(ValueError, match="length mismatch"):
            DatagramCodec.decode_batch(blob[:-1])

    def test_oversized_record_block_rejected(self):
        blob = DatagramCodec(engine_id=1).encode(_random_records(np.random.default_rng(8), 3))
        with pytest.raises(ValueError, match="length mismatch"):
            DatagramCodec.decode_batch(blob + b"\x00")

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="shorter than its header"):
            DatagramCodec.decode_batch(b"\x05\x00")

    def test_bad_version_rejected(self):
        blob = bytearray(DatagramCodec(engine_id=1).encode([]))
        struct.pack_into("<H", blob, 0, 9)
        with pytest.raises(ValueError, match="unsupported datagram version"):
            DatagramCodec.decode_batch(bytes(blob))

    def test_headerless_truncations_rejected(self):
        wire = encode_flows(_random_records(np.random.default_rng(9), 2))
        with pytest.raises(ValueError, match="missing count header"):
            decode_flows_batch(wire[:3])
        with pytest.raises(ValueError, match="truncated flow batch"):
            decode_flows_batch(wire[:-5])

    def test_batch_requires_flow_dtype_and_one_dim(self):
        with pytest.raises(TypeError):
            FlowBatch(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            FlowBatch(np.zeros((2, 2), dtype=FLOW_DTYPE))


def test_batch_sequence_protocol():
    records = _random_records(np.random.default_rng(10), 6)
    batch = FlowBatch.from_records(records)
    assert len(batch) == 6
    assert list(batch) == records
    assert batch[2] == records[2]
    assert batch[1:4].to_records() == records[1:4]
    assert FlowBatch.concat([batch[:2], FlowBatch.empty(), batch[2:]]) == batch


# ----------------------------------------------------------------------
# sampler: one batched binomial draw == the scalar per-flow loop
# ----------------------------------------------------------------------
class TestVectorizedSampler:
    def test_sample_many_and_sample_batch_match_scalar_draws(self):
        def draws_match(seed, n, rate):
            records = _random_records(np.random.default_rng(seed), n)
            scalar = PacketSampler(rate, rng=np.random.default_rng(seed))
            expected = [kept for kept in map(scalar.sample, records) if kept is not None]
            many = PacketSampler(rate, rng=np.random.default_rng(seed))
            assert many.sample_many(records) == expected
            batched = PacketSampler(rate, rng=np.random.default_rng(seed))
            out = batched.sample_batch(FlowBatch.from_records(records))
            assert out.to_records() == expected

        run_property(
            draws_match,
            integers(0, 10**6),
            choices([0, 1, 7, 200]),
            choices([1, 10, 1000]),
            runs=10,
            seed=47,
        )

    def test_rate_one_is_identity_with_rate_stamped(self):
        records = _random_records(np.random.default_rng(11), 5)
        sampler = PacketSampler(1, rng=np.random.default_rng(0))
        assert [r.packets for r in sampler.sample_many(records)] == [r.packets for r in records]
        assert all(r.sampling_rate == 1 for r in sampler.sample_many(records))
        assert sampler.sample_batch(FlowBatch.from_records(records)).to_records() == [
            r for r in sampler.sample_many(records)
        ]

    def test_seeded_output_is_pinned(self):
        """Regression pin: the vectorized draw order must never drift.

        These exact counters came from the scalar per-flow loop; a change
        here means seeded traces are no longer reproducible across
        releases.
        """
        rng = np.random.default_rng(1234)
        records = [
            FlowRecord(
                timestamp=0,
                src_addr=i + 1,
                dst_addr=99,
                src_port=1000 + i,
                dst_port=443,
                protocol=6,
                packets=int(rng.integers(1, 4_000)),
                bytes_=int(rng.integers(40, 2_000_000)),
            )
            for i in range(8)
        ]
        sampler = PacketSampler(100, rng=np.random.default_rng(42))
        sampled = sampler.sample_many(records)
        assert [(s.packets, s.bytes_) for s in sampled] == [
            (46, 22_940), (28, 5_389), (4, 10_767), (9, 11_216),
            (7, 8_050), (25, 2_754), (30, 4_558), (27, 5_471),
        ]


# ----------------------------------------------------------------------
# aggregation level: add_batch == add_flow per record, bit for bit
# ----------------------------------------------------------------------
def _scalar_matrix(records, customers, blocklisted) -> TrafficMatrix:
    matrix = TrafficMatrix()
    for customer_id, record, hot in zip(customers, records, blocklisted):
        matrix.add_flow(customer_id, record, [SOURCE_CLASS_BLOCKLIST] if hot else [])
    return matrix


def test_add_batch_bit_identical_to_add_flow():
    def matrices_match(seed, n, n_customers, chunks):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, n)
        customers = rng.integers(0, n_customers, size=n).astype(np.int64)
        mask = rng.random(n) < 0.3
        scalar = _scalar_matrix(records, customers.tolist(), mask.tolist())

        columnar = TrafficMatrix()
        batch = FlowBatch.from_records(records)
        # feed in several chunks: partial folds must compose exactly
        for bounds in np.array_split(np.arange(n), chunks):
            if not len(bounds):
                continue
            sub = slice(int(bounds[0]), int(bounds[-1]) + 1)
            columnar.add_batch(
                customers[sub], batch[sub], {SOURCE_CLASS_BLOCKLIST: mask[sub]}
            )
        assert pickle.dumps(columnar.state_dict()) == pickle.dumps(scalar.state_dict())

    run_property(
        matrices_match,
        integers(0, 10**6),
        choices([1, 10, 400]),
        choices([1, 4]),
        choices([1, 3]),
        runs=10,
        seed=59,
    )


def test_add_batch_empty_and_misaligned_inputs():
    matrix = TrafficMatrix()
    matrix.add_batch(np.empty(0, dtype=np.int64), FlowBatch.empty())
    assert matrix.customers() == []
    batch = FlowBatch.from_records(_random_records(np.random.default_rng(13), 3))
    with pytest.raises(ValueError, match="customer_ids"):
        matrix.add_batch(np.zeros(2, dtype=np.int64), batch)
    with pytest.raises(ValueError, match="class mask"):
        matrix.add_batch(
            np.zeros(3, dtype=np.int64), batch,
            {SOURCE_CLASS_BLOCKLIST: np.zeros(2, dtype=bool)},
        )


def test_feature_blocks_identical_across_lanes():
    rng = np.random.default_rng(17)
    records = _random_records(rng, 300, minutes=10)
    customers = rng.integers(0, 4, size=300).astype(np.int64)
    scalar = _scalar_matrix(records, customers.tolist(), [False] * 300)
    columnar = TrafficMatrix()
    columnar.add_batch(customers, FlowBatch.from_records(records))
    for customer in scalar.customers():
        a = scalar.feature_block(customer, 0, 10)
        b = columnar.feature_block(customer, 0, 10)
        assert a.tobytes() == b.tobytes()


# ----------------------------------------------------------------------
# collector: unified accounting across both entry points
# ----------------------------------------------------------------------
class TestCollectorAccounting:
    def setup_method(self):
        self._previous = set_enabled(True)
        get_registry().reset()

    def teardown_method(self):
        set_enabled(self._previous)
        get_registry().reset()

    @staticmethod
    def _counters():
        registry = get_registry()
        return (
            registry.counter("netflow.datagrams").value(),
            registry.counter("netflow.records").value(),
        )

    def test_headerless_ingest_feeds_the_same_counters(self):
        records = _random_records(np.random.default_rng(19), 5)
        collector = FlowCollector()
        collector.ingest(encode_flows(records))
        assert self._counters() == (1, 5)
        collector.ingest_datagram(DatagramCodec(engine_id=1).encode(records))
        assert self._counters() == (2, 10)
        assert collector.datagrams_received == 2
        assert collector.records_received == 10

    def test_drain_batch_matches_drain(self):
        records = _random_records(np.random.default_rng(23), 12)
        one, two = FlowCollector(), FlowCollector()
        for collector in (one, two):
            collector.ingest(encode_flows(records[:7]))
            collector.ingest_datagram(DatagramCodec(engine_id=1).encode(records[7:]))
        assert len(one) == 12 and list(one) == records
        assert one.drain_batch().to_records() == two.drain() == records
        assert len(one) == 0 and one.drain_batch() == FlowBatch.empty()

    def test_drain_batch_on_empty_collector(self):
        collector = FlowCollector()
        batch = collector.drain_batch()
        assert batch == FlowBatch.empty() and len(batch) == 0
        # an empty drain is not an ingest event and changes no accounting
        assert collector.datagrams_received == 0
        assert collector.records_received == 0
        # ...and does not wedge the collector: later ingests still flow
        records = _random_records(np.random.default_rng(31), 3)
        collector.ingest(encode_flows(records))
        assert collector.drain_batch().to_records() == records

    def test_drain_batch_partial_drains_never_redeliver(self):
        records = _random_records(np.random.default_rng(41), 10)
        collector = FlowCollector()
        collector.ingest(encode_flows(records[:6]))
        assert collector.drain_batch().to_records() == records[:6]
        # flows ingested after a drain come out alone — no re-delivery of
        # the already-drained chunk, and counters stay cumulative
        collector.ingest(encode_flows(records[6:]))
        assert collector.drain_batch().to_records() == records[6:]
        assert collector.records_received == 10
        assert len(collector) == 0 and collector.drain_batch() == FlowBatch.empty()

    def test_state_round_trip_preserves_pending_chunks(self):
        records = _random_records(np.random.default_rng(29), 9)
        collector = FlowCollector()
        collector.ingest(encode_flows(records[:4]))
        collector.ingest(encode_flows(records[4:]))
        state = collector.state_dict()
        restored = FlowCollector()
        restored.load_state_dict(state)
        # pending chunks coalesce on snapshot, so the restored snapshot
        # round-trips byte-identically from here on
        assert pickle.dumps(restored.state_dict()) == pickle.dumps(state)
        assert restored.drain() == records


class TestFeedHealthSequenceAnomalies:
    """Out-of-order and duplicated datagrams through the columnar path."""

    @staticmethod
    def _datagrams(n, per=3):
        codec = DatagramCodec(engine_id=1)
        rng = np.random.default_rng(37)
        return [codec.encode(_random_records(rng, per)) for _ in range(n)]

    def test_out_of_order_counts_without_loss(self):
        first, second, third = self._datagrams(3)
        collector = FlowCollector()
        collector.ingest_datagram(first)
        collector.ingest_datagram(third)  # skips ahead: 3 records lost
        collector.ingest_datagram(second)  # late arrival: reordered
        health = collector.feed_health()
        assert health.datagrams_received == 3
        assert health.records_received == 9
        assert health.records_lost == 3
        assert health.datagrams_reordered == 1

    def test_duplicate_datagram_flags_reorder_not_loss(self):
        first, second = self._datagrams(2)
        collector = FlowCollector()
        collector.ingest_datagram(first)
        collector.ingest_datagram(second)
        collector.ingest_datagram(second)  # duplicated in transit
        health = collector.feed_health()
        assert health.records_lost == 0
        assert health.datagrams_reordered == 1
        # duplicates still deliver records; the collector counts them
        assert health.records_received == 9

    def test_lossless_feed_is_clean(self):
        collector = FlowCollector()
        for blob in self._datagrams(4):
            collector.ingest_datagram(blob)
        health = collector.feed_health()
        assert health.records_lost == 0
        assert health.datagrams_reordered == 0
        assert health.loss_rate == 0.0


# ----------------------------------------------------------------------
# detector level: OnlineXatu's columnar lane == the scalar loop
# ----------------------------------------------------------------------
TINY_TIMESCALES = (TimescaleSpec("short", 1, 24), TimescaleSpec("long", 4, 8))


def _build_detector(model_seed: int, customer_of: dict[int, int]) -> OnlineXatu:
    config = XatuModelConfig(
        hidden_size=8,
        dense_size=6,
        detect_window=6,
        timescales=TINY_TIMESCALES,
        pooling="avg",
        seed=model_seed,
    )
    model = XatuModel(config)
    model.eval()
    scaler = FeatureScaler()
    scaler.mean_ = np.zeros(273)
    scaler.std_ = np.ones(273)
    route_table = RouteTable()
    route_table.announce((0, 2**31 - 1), origin_asn=1)  # upper half spoofed
    return OnlineXatu(
        model=model,
        scaler=scaler,
        threshold=0.5,
        customer_of=customer_of,
        blocklist={addr for addr in range(1, 2**32, 2**28)},
        route_table=route_table,
    )


def _trace_minutes(rng: np.random.Generator, customer_of, minutes: int):
    addresses = list(customer_of)
    out = []
    for minute in range(minutes):
        n = int(rng.integers(0, 40))
        flows = _random_records(rng, n, minutes=1)
        # aim most flows at real customers; leave some unrouted
        flows = [
            replace(
                f,
                timestamp=minute,
                dst_addr=int(rng.choice(addresses)) if rng.random() < 0.8 else f.dst_addr,
            )
            for f in flows
        ]
        out.append(flows)
    return out


def test_columnar_detector_lane_matches_scalar_lane():
    def lanes_match(seed, minutes):
        customer_of = {50_000 + i: i for i in range(4)}
        rng = np.random.default_rng(seed)
        trace = _trace_minutes(rng, customer_of, minutes)
        scalar = _build_detector(seed % 97, customer_of)
        columnar = _build_detector(seed % 97, customer_of)
        alert = AlertRecord(
            customer_id=1,
            attack_type=AttackType.TCP_SYN,
            detect_minute=0,
            end_minute=1,
            peak_bytes=1e9,
            attackers=frozenset(int(f.src_addr) for f in trace[0][:5]),
        )
        for detector in (scalar, columnar):
            detector.ingest_cdet_alert(alert)
        for minute, flows in enumerate(trace):
            a = scalar.step(minute, list(flows))
            b = columnar.step(minute, FlowBatch.from_records(flows))
            assert a == b, f"alerts drifted at minute {minute}"
        assert pickle.dumps(scalar.state_dict()) == pickle.dumps(columnar.state_dict())

    run_property(lanes_match, integers(0, 10**6), choices([3, 8]), runs=4, seed=71)


def test_columnar_lane_exercises_all_auxiliary_classes():
    """The differential pass is only meaningful if every mask fires."""
    customer_of = {50_000 + i: i for i in range(4)}
    rng = np.random.default_rng(3)
    trace = _trace_minutes(rng, customer_of, 6)
    detector = _build_detector(5, customer_of)
    detector.ingest_cdet_alert(
        AlertRecord(
            customer_id=0,
            attack_type=AttackType.TCP_SYN,
            detect_minute=0,
            end_minute=1,
            peak_bytes=1e9,
            attackers=frozenset(int(f.src_addr) for f in trace[2][:8]),
        )
    )
    for minute, flows in enumerate(trace):
        detector.step(minute, FlowBatch.from_records(flows))
    classes = {cls for (_cust, cls, _minute) in detector.matrix._cells}
    assert SOURCE_CLASS_PREV_ATTACKER in classes or SOURCE_CLASS_BLOCKLIST in classes


# ----------------------------------------------------------------------
# the tracked ingest benchmark
# ----------------------------------------------------------------------
class TestIngestBench:
    def test_smoke_run_and_speedups(self, tmp_path):
        from repro.bench import run_ingest, write_bench_json, load_bench_json

        report = run_ingest(tag="t", smoke=True, cases=("datagram_decode", "sampler"))
        speedups = report.speedups()
        assert set(speedups) == {"datagram_decode", "sampler"}
        assert all(s > 0 for s in speedups.values())
        out = write_bench_json(report, tmp_path)
        assert load_bench_json(out)["smoke"] is True

    def test_committed_baseline_meets_the_bar(self):
        from pathlib import Path

        from repro.bench import load_bench_json

        path = Path(__file__).resolve().parents[1] / (
            "benchmarks/results/BENCH_ingest.json"
        )
        payload = load_bench_json(path)
        assert not payload["smoke"]
        # the acceptance bar: >= 10x flows/sec on decode + aggregation
        assert payload["speedups"]["ingest_flows"] >= 10.0
        assert payload["speedups"]["datagram_decode"] >= 10.0
        assert payload["speedups"]["sampler"] >= 10.0
