"""Unit tests for CUSUM, the CDet simulators, and scrubbing accounting."""

import numpy as np
import pytest

from repro.detect import (
    NUMSTD_BY_TYPE,
    FastNetMonDetector,
    NetScoutDetector,
    anomaly_start,
    cusum_detect,
    cusum_scores,
)
from repro.scrub import DiversionWindow, ScrubbingCenter, ScrubbingReport
from repro.synth import AttackType


class TestCusum:
    def test_flat_series_never_fires(self):
        series = np.full(100, 10.0)
        assert cusum_detect(series, mu=10.0, sigma=1.0, threshold=5.0) is None

    def test_step_change_detected_near_step(self):
        rng = np.random.default_rng(1)
        series = np.concatenate([rng.normal(10, 1, 60), rng.normal(30, 1, 20)])
        idx = cusum_detect(series, mu=10.0, sigma=1.0, threshold=5.0)
        assert idx is not None and 60 <= idx <= 62

    def test_scores_non_negative(self, rng):
        series = rng.normal(5, 2, 50)
        scores = cusum_scores(series, mu=5.0, sigma=2.0)
        assert (scores >= 0).all()

    def test_numstd_raises_bar(self):
        series = np.full(20, 11.0)  # 1 sigma above mean
        low = cusum_scores(series, 10.0, 1.0, numstd=0.5)
        high = cusum_scores(series, 10.0, 1.0, numstd=2.0)
        assert low[-1] > 0
        assert high[-1] == 0

    def test_zero_sigma_guarded(self):
        scores = cusum_scores(np.ones(5), mu=1.0, sigma=0.0)
        assert np.isfinite(scores).all()

    def test_all_types_have_numstd(self):
        assert set(NUMSTD_BY_TYPE) == set(AttackType)

    def test_anomaly_start_precedes_detection(self):
        rng = np.random.default_rng(2)
        series = np.concatenate([rng.normal(10, 1, 100), np.linspace(12, 200, 20)])
        onset = anomaly_start(series, detect_index=115, attack_type=AttackType.UDP_FLOOD)
        assert 95 <= onset <= 110

    def test_anomaly_start_falls_back_to_detection(self):
        series = np.full(50, 10.0)  # no ramp at all
        assert anomaly_start(series, 40, AttackType.UDP_FLOOD) == 40

    def test_detect_index_zero(self):
        assert anomaly_start(np.ones(5), 0, AttackType.ICMP_FLOOD) == 0


class TestDetectors:
    def test_netscout_fires_on_sustained_attack(self, trace):
        alerts = NetScoutDetector().detect(trace)
        assert alerts
        hits = [a for a in alerts if a.event_id >= 0]
        assert hits, "NetScout should catch at least some attacks"

    def test_netscout_detects_after_onset(self, trace):
        for a in NetScoutDetector().detect(trace):
            if a.event_id >= 0:
                event = trace.events[a.event_id]
                assert a.detect_minute >= event.onset

    def test_alert_windows_well_formed(self, trace):
        for detector in (NetScoutDetector(), FastNetMonDetector()):
            for a in detector.detect(trace):
                assert 0 <= a.detect_minute < a.end_minute <= trace.horizon
                assert a.peak_bytes >= 0

    def test_fnm_more_sensitive_than_netscout(self, trace):
        ns = NetScoutDetector().detect(trace)
        fnm = FastNetMonDetector().detect(trace)
        ns_matched = {a.event_id for a in ns if a.event_id >= 0}
        fnm_matched = {a.event_id for a in fnm if a.event_id >= 0}
        assert len(fnm_matched) >= len(ns_matched)

    def test_sustain_filters_short_excursions(self, trace):
        strict = NetScoutDetector(sustain=30)
        assert len(strict.detect(trace)) <= len(NetScoutDetector(sustain=2).detect(trace))


class TestScrubbingCenter:
    def test_full_coverage_is_full_effectiveness(self, trace):
        event = trace.events[0]
        windows = [DiversionWindow(event.customer_id, event.onset, event.end)]
        report = ScrubbingCenter(trace).account(windows)
        assert report.effectiveness(event.event_id) == pytest.approx(1.0)
        assert report.detection_delay[event.event_id] == 0

    def test_no_windows_zero_effectiveness(self, trace):
        report = ScrubbingCenter(trace).account([])
        for event in trace.events:
            assert report.effectiveness(event.event_id) == 0.0
            assert report.detection_delay[event.event_id] is None

    def test_partial_coverage_between_zero_and_one(self, trace):
        event = max(trace.events, key=lambda e: e.duration)
        if event.duration < 4:
            pytest.skip("no long event in trace")
        mid = event.onset + event.duration // 2
        report = ScrubbingCenter(trace).account(
            [DiversionWindow(event.customer_id, mid, event.end)]
        )
        eff = report.effectiveness(event.event_id)
        assert 0.0 < eff < 1.0
        assert report.detection_delay[event.event_id] == mid - event.onset

    def test_early_diversion_negative_delay(self, trace):
        event = trace.events[0]
        report = ScrubbingCenter(trace).account(
            [DiversionWindow(event.customer_id, event.onset - 5, event.end)]
        )
        assert report.detection_delay[event.event_id] == -5
        assert report.effectiveness(event.event_id) == pytest.approx(1.0)

    def test_extraneous_diversion_counted_as_overhead(self, trace):
        event = trace.events[0]
        cid = event.customer_id
        # Divert a quiet window far from any attack.
        quiet_start = event.onset - 40
        report = ScrubbingCenter(trace).account(
            [DiversionWindow(cid, quiet_start, quiet_start + 10)]
        )
        assert report.customer_extraneous[cid] > 0
        assert report.overhead(cid) > 0

    def test_overhead_zero_without_diversion(self, trace):
        report = ScrubbingCenter(trace).account([])
        for cid in report.customer_anomalous:
            assert report.overhead(cid) == 0.0

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            DiversionWindow(0, 10, 5)

    def test_effectiveness_values_vector(self, trace):
        report = ScrubbingCenter(trace).account([])
        values = report.effectiveness_values()
        assert len(values) == len(trace.events)

    def test_delay_values_missed_handling(self, trace):
        report = ScrubbingCenter(trace).account([])
        assert len(report.delay_values()) == 0  # dropped by default
        filled = report.delay_values(missed_value=99)
        assert len(filled) == len(trace.events)
        assert (filled == 99).all()

    def test_overlapping_windows_not_double_counted(self, trace):
        event = trace.events[0]
        windows = [
            DiversionWindow(event.customer_id, event.onset, event.end),
            DiversionWindow(event.customer_id, event.onset, event.end),
        ]
        report = ScrubbingCenter(trace).account(windows)
        assert report.effectiveness(event.event_id) <= 1.0 + 1e-9
